// Package storage provides the relational substrate for the evaluation
// engines: interned symbols, set-semantics relations over fixed-arity
// tuples, per-column hash indexes, and instrumentation counters that
// measure the paper's Property 3 ("never do an unrestricted lookup on a
// nonrecursive relation").
package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Value is an interned constant symbol.
type Value int32

// Tuple is a fixed-arity row of interned values.
type Tuple []Value

// Key encodes a tuple as a map key.
func (t Tuple) Key() string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// SymbolTable interns constant names as dense Values.
type SymbolTable struct {
	names []string
	ids   map[string]Value
}

// NewSymbolTable creates an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]Value)}
}

// Intern returns the Value for name, assigning a fresh one on first use.
func (st *SymbolTable) Intern(name string) Value {
	if v, ok := st.ids[name]; ok {
		return v
	}
	v := Value(len(st.names))
	st.names = append(st.names, name)
	st.ids[name] = v
	return v
}

// Lookup returns the Value for name without interning.
func (st *SymbolTable) Lookup(name string) (Value, bool) {
	v, ok := st.ids[name]
	return v, ok
}

// Name returns the constant name for a Value.
func (st *SymbolTable) Name(v Value) string {
	if int(v) < 0 || int(v) >= len(st.names) {
		return fmt.Sprintf("#%d", v)
	}
	return st.names[v]
}

// Len returns the number of interned symbols.
func (st *SymbolTable) Len() int { return len(st.names) }

// Counters instruments relation access. TuplesExamined counts tuples
// touched by lookups and scans; IndexLookups counts index probes;
// FullScans counts scans with no bound column (the unrestricted lookups
// Property 3 forbids); Inserts counts accepted tuple insertions (a proxy
// for state size).
type Counters struct {
	TuplesExamined int64
	IndexLookups   int64
	FullScans      int64
	Inserts        int64
}

// Reset zeroes the counters.
func (c *Counters) Reset() { *c = Counters{} }

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.TuplesExamined += other.TuplesExamined
	c.IndexLookups += other.IndexLookups
	c.FullScans += other.FullScans
	c.Inserts += other.Inserts
}

// Relation is a set of tuples of fixed arity with lazily built per-column
// hash indexes. The zero value is not usable; construct with NewRelation.
type Relation struct {
	arity   int
	tuples  []Tuple
	present map[string]bool
	// cols[i] maps a value to the ordinals of tuples holding it in column i
	// (nil until built).
	cols  []map[Value][]int
	stats *Counters
}

// NewRelation creates an empty relation of the given arity, reporting
// instrumentation to stats (which may be nil).
func NewRelation(arity int, stats *Counters) *Relation {
	return &Relation{
		arity:   arity,
		present: make(map[string]bool),
		cols:    make([]map[Value][]int, arity),
		stats:   stats,
	}
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert adds a tuple (copied), returning true when it was not already
// present.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
	}
	k := t.Key()
	if r.present[k] {
		return false
	}
	r.present[k] = true
	ord := len(r.tuples)
	ct := t.Clone()
	r.tuples = append(r.tuples, ct)
	for i, idx := range r.cols {
		if idx != nil {
			idx[ct[i]] = append(idx[ct[i]], ord)
		}
	}
	if r.stats != nil {
		r.stats.Inserts++
	}
	return true
}

// Contains reports membership.
func (r *Relation) Contains(t Tuple) bool { return r.present[t.Key()] }

// Tuples returns the backing tuple slice. Callers must not modify it. This
// accessor is not instrumented; use Scan for measured access.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Scan iterates every tuple, recording a full scan. Tuples are counted as
// examined only up to the point the caller stops.
func (r *Relation) Scan(yield func(Tuple) bool) {
	if r.stats != nil {
		r.stats.FullScans++
	}
	for _, t := range r.tuples {
		if r.stats != nil {
			r.stats.TuplesExamined++
		}
		if !yield(t) {
			return
		}
	}
}

// ensureIndex builds the hash index for a column on first use.
func (r *Relation) ensureIndex(col int) map[Value][]int {
	if r.cols[col] == nil {
		idx := make(map[Value][]int)
		for ord, t := range r.tuples {
			idx[t[col]] = append(idx[t[col]], ord)
		}
		r.cols[col] = idx
	}
	return r.cols[col]
}

// Binding is a column/value restriction for Lookup.
type Binding struct {
	Col int
	Val Value
}

// Lookup iterates the tuples matching all bindings. With at least one
// binding it probes the hash index of the first binding's column and
// filters the rest (instrumented as an index lookup); with none it
// degrades to a full scan.
func (r *Relation) Lookup(bindings []Binding, yield func(Tuple) bool) {
	if len(bindings) == 0 {
		r.Scan(yield)
		return
	}
	idx := r.ensureIndex(bindings[0].Col)
	ords := idx[bindings[0].Val]
	if r.stats != nil {
		r.stats.IndexLookups++
	}
outer:
	for _, ord := range ords {
		t := r.tuples[ord]
		if r.stats != nil {
			r.stats.TuplesExamined++
		}
		for _, b := range bindings[1:] {
			if t[b.Col] != b.Val {
				continue outer
			}
		}
		if !yield(t) {
			return
		}
	}
}

// Equal reports whether two relations hold the same tuple sets.
func (r *Relation) Equal(o *Relation) bool {
	if r.arity != o.arity || len(r.tuples) != len(o.tuples) {
		return false
	}
	for k := range r.present {
		if !o.present[k] {
			return false
		}
	}
	return true
}

// SortedTuples returns the tuples in lexicographic order (fresh slice),
// for deterministic output.
func (r *Relation) SortedTuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Database is a named collection of relations sharing a symbol table and
// instrumentation counters.
type Database struct {
	Syms  *SymbolTable
	Stats Counters
	rels  map[string]*Relation
}

// NewDatabase creates an empty database with a fresh symbol table.
func NewDatabase() *Database {
	return &Database{Syms: NewSymbolTable(), rels: make(map[string]*Relation)}
}

// NewDatabaseWith creates an empty database sharing an existing symbol
// table (used for derived/IDB databases).
func NewDatabaseWith(syms *SymbolTable) *Database {
	return &Database{Syms: syms, rels: make(map[string]*Relation)}
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(pred string) *Relation { return db.rels[pred] }

// Ensure returns the named relation, creating it with the given arity when
// missing.
func (db *Database) Ensure(pred string, arity int) *Relation {
	if r, ok := db.rels[pred]; ok {
		if r.arity != arity {
			panic(fmt.Sprintf("storage: relation %s has arity %d, requested %d", pred, r.arity, arity))
		}
		return r
	}
	r := NewRelation(arity, &db.Stats)
	db.rels[pred] = r
	return r
}

// Preds returns the sorted relation names.
func (db *Database) Preds() []string {
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// AddFact interns the constant names and inserts the tuple into pred.
func (db *Database) AddFact(pred string, consts ...string) {
	t := make(Tuple, len(consts))
	for i, c := range consts {
		t[i] = db.Syms.Intern(c)
	}
	db.Ensure(pred, len(consts)).Insert(t)
}

// TupleCount returns the total number of tuples across relations.
func (db *Database) TupleCount() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// Dump renders the database deterministically, one fact per line, for
// tests and the CLI.
func (db *Database) Dump() string {
	var b strings.Builder
	for _, p := range db.Preds() {
		r := db.rels[p]
		for _, t := range r.SortedTuples() {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = db.Syms.Name(v)
			}
			fmt.Fprintf(&b, "%s(%s).\n", p, strings.Join(parts, ", "))
		}
	}
	return b.String()
}
