// Package storage provides the relational substrate for the evaluation
// engines: interned symbols, set-semantics relations over fixed-arity
// tuples, per-column hash indexes, and instrumentation counters that
// measure the paper's Property 3 ("never do an unrestricted lookup on a
// nonrecursive relation").
//
// Concurrency: SymbolTable, Relation, and Database are safe for any
// number of concurrent readers with concurrent writers (RWMutex-guarded
// structures plus atomic counters), so one Engine can serve parallel
// queries over a shared EDB. Iteration (Scan, Lookup, Tuples) works on a
// snapshot of the tuple set taken at call time: tuples are append-only
// and never mutated in place, so a snapshot is a consistent prefix, and
// a goroutine may insert into the very relation it is scanning — the
// fixpoint loops rely on this — without deadlock.
package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Value is an interned constant symbol.
type Value int32

// Tuple is a fixed-arity row of interned values.
type Tuple []Value

// Key encodes a tuple as a map key.
func (t Tuple) Key() string {
	b := make([]byte, 4*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return string(b)
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// SymbolTable interns constant names as dense Values. It is safe for
// concurrent use.
type SymbolTable struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]Value
}

// NewSymbolTable creates an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]Value)}
}

// Intern returns the Value for name, assigning a fresh one on first use.
func (st *SymbolTable) Intern(name string) Value {
	st.mu.RLock()
	v, ok := st.ids[name]
	st.mu.RUnlock()
	if ok {
		return v
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if v, ok := st.ids[name]; ok {
		return v
	}
	v = Value(len(st.names))
	st.names = append(st.names, name)
	st.ids[name] = v
	return v
}

// Lookup returns the Value for name without interning.
func (st *SymbolTable) Lookup(name string) (Value, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, ok := st.ids[name]
	return v, ok
}

// Name returns the constant name for a Value.
func (st *SymbolTable) Name(v Value) string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if int(v) < 0 || int(v) >= len(st.names) {
		return fmt.Sprintf("#%d", v)
	}
	return st.names[v]
}

// Len returns the number of interned symbols.
func (st *SymbolTable) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.names)
}

// Counters instruments relation access. TuplesExamined counts tuples
// touched by lookups and scans; IndexLookups counts index probes;
// FullScans counts scans with no bound column (the unrestricted lookups
// Property 3 forbids); Inserts counts accepted tuple insertions (a proxy
// for state size).
//
// All updates are atomic, so Counters may be shared across goroutines.
// Direct field reads are fine when the database is quiesced (the usual
// measure-after-evaluating pattern); use Snapshot while writers may
// still be running.
//
// Alignment: the fields are operated on with 64-bit atomics, so a
// Counters must be 64-bit aligned — heap-allocated (any value whose
// address escapes, as every value passed to NewRelation does) or placed
// first in its enclosing struct, as in Database.
type Counters struct {
	TuplesExamined int64
	IndexLookups   int64
	FullScans      int64
	Inserts        int64
}

// Reset zeroes the counters.
func (c *Counters) Reset() {
	atomic.StoreInt64(&c.TuplesExamined, 0)
	atomic.StoreInt64(&c.IndexLookups, 0)
	atomic.StoreInt64(&c.FullScans, 0)
	atomic.StoreInt64(&c.Inserts, 0)
}

// Snapshot returns an atomically read copy of the counters.
func (c *Counters) Snapshot() Counters {
	return Counters{
		TuplesExamined: atomic.LoadInt64(&c.TuplesExamined),
		IndexLookups:   atomic.LoadInt64(&c.IndexLookups),
		FullScans:      atomic.LoadInt64(&c.FullScans),
		Inserts:        atomic.LoadInt64(&c.Inserts),
	}
}

// Sub returns c - other, field by field (for per-query deltas).
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		TuplesExamined: c.TuplesExamined - other.TuplesExamined,
		IndexLookups:   c.IndexLookups - other.IndexLookups,
		FullScans:      c.FullScans - other.FullScans,
		Inserts:        c.Inserts - other.Inserts,
	}
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	atomic.AddInt64(&c.TuplesExamined, other.TuplesExamined)
	atomic.AddInt64(&c.IndexLookups, other.IndexLookups)
	atomic.AddInt64(&c.FullScans, other.FullScans)
	atomic.AddInt64(&c.Inserts, other.Inserts)
}

// Relation is a set of tuples of fixed arity with lazily built per-column
// hash indexes. The zero value is not usable; construct with NewRelation.
// Methods are safe for concurrent use; see the package comment for the
// snapshot semantics of iteration.
type Relation struct {
	arity int
	stats *Counters

	mu      sync.RWMutex
	tuples  []Tuple
	present map[string]bool
	// cols[i] maps a value to the ordinals of tuples holding it in column i
	// (nil until built).
	cols []map[Value][]int
}

// NewRelation creates an empty relation of the given arity, reporting
// instrumentation to stats (which may be nil).
func NewRelation(arity int, stats *Counters) *Relation {
	return &Relation{
		arity:   arity,
		present: make(map[string]bool),
		cols:    make([]map[Value][]int, arity),
		stats:   stats,
	}
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tuples)
}

// Insert adds a tuple (copied), returning true when it was not already
// present.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
	}
	k := t.Key()
	r.mu.Lock()
	if r.present[k] {
		r.mu.Unlock()
		return false
	}
	r.present[k] = true
	ord := len(r.tuples)
	ct := t.Clone()
	r.tuples = append(r.tuples, ct)
	for i, idx := range r.cols {
		if idx != nil {
			idx[ct[i]] = append(idx[ct[i]], ord)
		}
	}
	r.mu.Unlock()
	if r.stats != nil {
		atomic.AddInt64(&r.stats.Inserts, 1)
	}
	return true
}

// Contains reports membership.
func (r *Relation) Contains(t Tuple) bool {
	k := t.Key()
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.present[k]
}

// Tuples returns a snapshot of the backing tuple slice. Callers must not
// modify it. This accessor is not instrumented; use Scan for measured
// access.
func (r *Relation) Tuples() []Tuple {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tuples[:len(r.tuples):len(r.tuples)]
}

// Scan iterates a snapshot of the tuples, recording a full scan. Tuples
// are counted as examined only up to the point the caller stops.
func (r *Relation) Scan(yield func(Tuple) bool) {
	tuples := r.Tuples()
	if r.stats != nil {
		atomic.AddInt64(&r.stats.FullScans, 1)
	}
	for _, t := range tuples {
		if r.stats != nil {
			atomic.AddInt64(&r.stats.TuplesExamined, 1)
		}
		if !yield(t) {
			return
		}
	}
}

// ensureIndexLocked builds the hash index for a column. The caller must
// hold the write lock.
func (r *Relation) ensureIndexLocked(col int) {
	if r.cols[col] == nil {
		idx := make(map[Value][]int)
		for ord, t := range r.tuples {
			idx[t[col]] = append(idx[t[col]], ord)
		}
		r.cols[col] = idx
	}
}

// Binding is a column/value restriction for Lookup.
type Binding struct {
	Col int
	Val Value
}

// Lookup iterates the tuples matching all bindings. With at least one
// binding it probes the hash index of the most selective bound column —
// the one whose posting list for its value is shortest — and filters the
// remaining bindings tuple by tuple (instrumented as one index lookup);
// with none it degrades to a full scan. Indexes for every bound column
// are built on first use, so selectivity is compared on actual posting
// lists rather than guessed.
func (r *Relation) Lookup(bindings []Binding, yield func(Tuple) bool) {
	if len(bindings) == 0 {
		r.Scan(yield)
		return
	}
	r.mu.RLock()
	missing := false
	for _, b := range bindings {
		if r.cols[b.Col] == nil {
			missing = true
			break
		}
	}
	if missing {
		r.mu.RUnlock()
		r.mu.Lock()
		for _, b := range bindings {
			r.ensureIndexLocked(b.Col)
		}
		r.mu.Unlock()
		r.mu.RLock()
	}
	// Probe the most selective bound column: shortest posting list wins.
	probe := 0
	ords := r.cols[bindings[0].Col][bindings[0].Val]
	for i, b := range bindings[1:] {
		if cand := r.cols[b.Col][b.Val]; len(cand) < len(ords) {
			probe, ords = i+1, cand
		}
	}
	tuples := r.tuples[:len(r.tuples):len(r.tuples)]
	r.mu.RUnlock()

	if r.stats != nil {
		atomic.AddInt64(&r.stats.IndexLookups, 1)
	}
outer:
	for _, ord := range ords {
		t := tuples[ord]
		if r.stats != nil {
			atomic.AddInt64(&r.stats.TuplesExamined, 1)
		}
		for i, b := range bindings {
			if i == probe {
				continue
			}
			if t[b.Col] != b.Val {
				continue outer
			}
		}
		if !yield(t) {
			return
		}
	}
}

// Equal reports whether two relations hold the same tuple sets.
func (r *Relation) Equal(o *Relation) bool {
	if r == o {
		return true
	}
	if r.arity != o.arity {
		return false
	}
	r.mu.RLock()
	keys := make([]string, 0, len(r.present))
	for k := range r.present {
		keys = append(keys, k)
	}
	r.mu.RUnlock()
	o.mu.RLock()
	defer o.mu.RUnlock()
	if len(keys) != len(o.present) {
		return false
	}
	for _, k := range keys {
		if !o.present[k] {
			return false
		}
	}
	return true
}

// SortedTuples returns the tuples in lexicographic order (fresh slice),
// for deterministic output.
func (r *Relation) SortedTuples() []Tuple {
	snap := r.Tuples()
	out := make([]Tuple, len(snap))
	copy(out, snap)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Database is a named collection of relations sharing a symbol table and
// instrumentation counters. It is safe for concurrent use.
type Database struct {
	Stats Counters // first field: keeps the atomics 64-bit aligned on 32-bit platforms
	Syms  *SymbolTable

	mu   sync.RWMutex
	rels map[string]*Relation
}

// NewDatabase creates an empty database with a fresh symbol table.
func NewDatabase() *Database {
	return &Database{Syms: NewSymbolTable(), rels: make(map[string]*Relation)}
}

// NewDatabaseWith creates an empty database sharing an existing symbol
// table (used for derived/IDB databases).
func NewDatabaseWith(syms *SymbolTable) *Database {
	return &Database{Syms: syms, rels: make(map[string]*Relation)}
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(pred string) *Relation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rels[pred]
}

// Ensure returns the named relation, creating it with the given arity when
// missing.
func (db *Database) Ensure(pred string, arity int) *Relation {
	db.mu.RLock()
	r, ok := db.rels[pred]
	db.mu.RUnlock()
	if ok {
		if r.arity != arity {
			panic(fmt.Sprintf("storage: relation %s has arity %d, requested %d", pred, r.arity, arity))
		}
		return r
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if r, ok := db.rels[pred]; ok {
		if r.arity != arity {
			panic(fmt.Sprintf("storage: relation %s has arity %d, requested %d", pred, r.arity, arity))
		}
		return r
	}
	r = NewRelation(arity, &db.Stats)
	db.rels[pred] = r
	return r
}

// Preds returns the sorted relation names.
func (db *Database) Preds() []string {
	db.mu.RLock()
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	db.mu.RUnlock()
	sort.Strings(out)
	return out
}

// AddFact interns the constant names and inserts the tuple into pred.
func (db *Database) AddFact(pred string, consts ...string) {
	t := make(Tuple, len(consts))
	for i, c := range consts {
		t[i] = db.Syms.Intern(c)
	}
	db.Ensure(pred, len(consts)).Insert(t)
}

// TupleCount returns the total number of tuples across relations.
func (db *Database) TupleCount() int {
	db.mu.RLock()
	rels := make([]*Relation, 0, len(db.rels))
	for _, r := range db.rels {
		rels = append(rels, r)
	}
	db.mu.RUnlock()
	n := 0
	for _, r := range rels {
		n += r.Len()
	}
	return n
}

// Dump renders the database deterministically, one fact per line, for
// tests and the CLI.
func (db *Database) Dump() string {
	var b strings.Builder
	for _, p := range db.Preds() {
		r := db.Relation(p)
		for _, t := range r.SortedTuples() {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = db.Syms.Name(v)
			}
			fmt.Fprintf(&b, "%s(%s).\n", p, strings.Join(parts, ", "))
		}
	}
	return b.String()
}
