package storage

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/quote"
)

// Journal receives every accepted mutation of a journaled database, in
// happens-before order: a symbol's JournalSym call completes before any
// JournalFact referencing its Value (Intern invokes the hook under the
// symbol table's lock), and JournalFact is called exactly once per
// accepted insert (duplicates are filtered by the relation's set
// semantics before the hook fires). The tuple passed to JournalFact is
// only valid for the duration of the call — implementations must encode
// or copy it before returning, and must be safe for concurrent use; the
// write-ahead log in internal/wal is the canonical one.
type Journal interface {
	// JournalSym records that name was interned as the next dense Value.
	JournalSym(name string)
	// JournalFact records an accepted insert of t into the named relation.
	JournalFact(pred string, t Tuple)
	// JournalRetract records an accepted retraction of t from the named
	// relation (called exactly once per tuple that was actually present).
	JournalRetract(pred string, t Tuple)
}

// BatchJournal is implemented by journals that can absorb a run of
// same-predicate records as one buffered append covered by a single
// policy sync (the write-ahead log fsyncs once per run instead of once
// per record). InsertBatch and RetractBatch call it when available and
// fall back to the per-tuple hooks otherwise. The Journal contracts
// apply to the run as a whole: exactly one record per accepted
// mutation, symbol records ordered before any tuple referencing them,
// and the tuples valid only for the duration of the call.
type BatchJournal interface {
	Journal
	// JournalFactBatch records a run of accepted inserts into pred.
	JournalFactBatch(pred string, tuples []Tuple)
	// JournalRetractBatch records a run of accepted retractions from pred.
	JournalRetractBatch(pred string, tuples []Tuple)
}

// Value is an interned constant symbol.
type Value int32

// Tuple is a fixed-arity row of interned values.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// HashTuple returns a 32-bit hash of the tuple's values: word-at-a-time
// FNV-1a with a final multiply-shift mix (interned Values are dense
// small ints, so the plain FNV low bits would collide on consecutive
// rows). It is the hash the shard dedup tables store, exported so other
// layers can build tuple-keyed open-addressing tables without string
// keys.
func HashTuple(t Tuple) uint32 {
	h := uint32(2166136261)
	for _, v := range t {
		h = (h ^ uint32(v)) * 16777619
	}
	h ^= h >> 15
	h *= 2654435761
	h ^= h >> 13
	return h
}

// SymbolTable interns constant names as dense Values. It is safe for
// concurrent use.
type SymbolTable struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]Value
	// onIntern, when set, observes every fresh intern under mu (the
	// write-ahead log's ordering hook). Set via SetInternHook.
	onIntern func(name string)
}

// NewSymbolTable creates an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]Value)}
}

// Intern returns the Value for name, assigning a fresh one on first use.
func (st *SymbolTable) Intern(name string) Value {
	st.mu.RLock()
	v, ok := st.ids[name]
	st.mu.RUnlock()
	if ok {
		return v
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if v, ok := st.ids[name]; ok {
		return v
	}
	v = Value(len(st.names))
	st.names = append(st.names, name)
	st.ids[name] = v
	if st.onIntern != nil {
		st.onIntern(name)
	}
	return v
}

// InternBatch interns every name into dst (which must have the same
// length as names), taking the read lock once for the whole run and
// escalating to the write lock only when some name is fresh — the
// batched write path's amortization of Intern's per-call locking.
func (st *SymbolTable) InternBatch(names []string, dst []Value) {
	st.mu.RLock()
	hit := true
	for i, n := range names {
		v, ok := st.ids[n]
		if !ok {
			hit = false
			break
		}
		dst[i] = v
	}
	st.mu.RUnlock()
	if hit {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, n := range names {
		v, ok := st.ids[n]
		if !ok {
			v = Value(len(st.names))
			st.names = append(st.names, n)
			st.ids[n] = v
			if st.onIntern != nil {
				st.onIntern(n)
			}
		}
		dst[i] = v
	}
}

// SetInternHook installs (or clears, with nil) the fresh-intern observer.
// The hook runs with the table's write lock held, so its calls are
// ordered exactly like the interns themselves; it must not call back into
// the table.
func (st *SymbolTable) SetInternHook(hook func(name string)) {
	st.mu.Lock()
	st.onIntern = hook
	st.mu.Unlock()
}

// Names returns a copy of the interned names in Value order (Value(i) is
// names[i]) — the symbol-table section of a snapshot.
func (st *SymbolTable) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, len(st.names))
	copy(out, st.names)
	return out
}

// Lookup returns the Value for name without interning.
func (st *SymbolTable) Lookup(name string) (Value, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, ok := st.ids[name]
	return v, ok
}

// Name returns the constant name for a Value.
func (st *SymbolTable) Name(v Value) string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if int(v) < 0 || int(v) >= len(st.names) {
		return fmt.Sprintf("#%d", v)
	}
	return st.names[v]
}

// Len returns the number of interned symbols.
func (st *SymbolTable) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.names)
}

// Counters instruments relation access. TuplesExamined counts tuples
// touched by lookups and scans; IndexLookups counts index probes — one
// per shard a Lookup actually probes, so a lookup that cannot be routed
// by a ShardColumn binding and fans out over an n-shard relation counts
// n probes, not 1; FullScans counts scans with no bound column (the
// unrestricted lookups Property 3 forbids); Inserts counts accepted
// tuple insertions (a proxy for state size); Retracts counts accepted
// tuple retractions.
//
// All updates are atomic, so Counters may be shared across goroutines.
// Direct field reads are fine when the database is quiesced (the usual
// measure-after-evaluating pattern); use Snapshot while writers may
// still be running.
//
// Alignment: the fields are operated on with 64-bit atomics, so a
// Counters must be 64-bit aligned — heap-allocated (any value whose
// address escapes, as every value passed to NewRelation does) or placed
// first in its enclosing struct, as in Database.
type Counters struct {
	TuplesExamined int64
	IndexLookups   int64
	FullScans      int64
	Inserts        int64
	Retracts       int64
}

// Reset zeroes the counters.
func (c *Counters) Reset() {
	atomic.StoreInt64(&c.TuplesExamined, 0)
	atomic.StoreInt64(&c.IndexLookups, 0)
	atomic.StoreInt64(&c.FullScans, 0)
	atomic.StoreInt64(&c.Inserts, 0)
	atomic.StoreInt64(&c.Retracts, 0)
}

// Snapshot returns an atomically read copy of the counters.
func (c *Counters) Snapshot() Counters {
	return Counters{
		TuplesExamined: atomic.LoadInt64(&c.TuplesExamined),
		IndexLookups:   atomic.LoadInt64(&c.IndexLookups),
		FullScans:      atomic.LoadInt64(&c.FullScans),
		Inserts:        atomic.LoadInt64(&c.Inserts),
		Retracts:       atomic.LoadInt64(&c.Retracts),
	}
}

// Sub returns c - other, field by field (for per-query deltas).
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		TuplesExamined: c.TuplesExamined - other.TuplesExamined,
		IndexLookups:   c.IndexLookups - other.IndexLookups,
		FullScans:      c.FullScans - other.FullScans,
		Inserts:        c.Inserts - other.Inserts,
		Retracts:       c.Retracts - other.Retracts,
	}
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	atomic.AddInt64(&c.TuplesExamined, other.TuplesExamined)
	atomic.AddInt64(&c.IndexLookups, other.IndexLookups)
	atomic.AddInt64(&c.FullScans, other.FullScans)
	atomic.AddInt64(&c.Inserts, other.Inserts)
	atomic.AddInt64(&c.Retracts, other.Retracts)
}

// deltaTailBound caps the per-shard delta tail: the number of recent
// mutations a shard remembers for DeltaSince. When the tail overflows,
// the oldest half is evicted and the shard's floor advances — DeltaSince
// calls asking for history below the floor report a full fallback.
const deltaTailBound = 1024

// tailEntry records one accepted mutation for delta tracking: the
// tuple's row id in the shard, the database epoch it was stamped with,
// and the sign (del marks a retraction). Epochs are non-decreasing in
// append order (the stamp is read under the shard lock from a monotone
// counter), so DeltaSince can binary-search. Retraction entries keep
// referencing the tombstoned row — rows never move, so the dead row's
// column values remain readable for delta reconstruction.
type tailEntry struct {
	row   int
	epoch uint64
	del   bool
}

// Arena-block geometry: rows are stored in fixed-size blocks of
// blockRows rows each, one flat []Value slab per block holding every
// column. Within a block the layout is column-major — column c of row r
// lives at blocks[r>>blockShift][c<<blockShift | r&blockMask] — so each
// column is a contiguous run and a whole block is a single allocation
// covering arity*blockRows values (no per-tuple slice headers).
const (
	blockShift = 10
	blockRows  = 1 << blockShift
	blockMask  = blockRows - 1
)

// slotDead marks a dedup slot whose row was retracted: probes skip it
// and keep walking (the chain must not break), inserts may reuse it.
const slotDead = -1

// deadWords is the tombstone-bitset words per block (one bit per row).
const deadWords = blockRows / 64

// shard is one independently-locked partition of a Relation: a columnar
// tuple store with an open-addressing dedup table over row ids and
// lazily built per-column posting-list indexes. Tuple identity is the
// dense row id; rows are append-only and blocks are never moved, which
// is what makes lock-free snapshot iteration sound (see view).
// Retraction never moves rows either: it sets the row's bit in the
// per-block tombstone bitset (readers check it with atomic loads) and
// frees the dedup slot.
type shard struct {
	mu sync.RWMutex
	// blocks are the arena slabs (see the block geometry constants).
	blocks [][]Value
	rows   int
	// dead[b] is block b's tombstone bitset (deadWords uint64 words,
	// allocated with the block). Bits are set with atomic stores under
	// the write lock and read with atomic loads, possibly lock-free off a
	// captured view; a set bit never clears (re-inserting a retracted
	// tuple appends a fresh row). deadCnt counts set bits.
	dead    [][]uint64
	deadCnt int
	// Dedup table: open addressing with linear probing. slots holds
	// row+1 (0 = empty, slotDead = retracted); hashes holds each occupied
	// slot's full tuple hash, so growth rehashes from stored hashes
	// without re-reading columns and a probe compares columns only on a
	// full hash match. used counts non-empty slots (occupied + dead) —
	// the load-factor input, since dead slots still lengthen probes.
	slots  []int32
	hashes []uint32
	used   int
	// cols[i] maps a value to the row ids holding it in column i (nil
	// until built). Posting lists may reference tombstoned rows; lookups
	// filter them lazily, and the whole index set is dropped for a
	// from-live-rows rebuild when the shard passes half dead (the
	// tombstone compaction rule).
	cols []map[Value][]int32
	// tail is the bounded recent-mutation log for DeltaSince (tracked
	// relations only); tailFloor is the lowest epoch the tail still covers
	// completely.
	tail      []tailEntry
	tailFloor uint64
}

// valueAt reads one column of one row. The caller must hold the shard
// lock or be reading a row captured by a view.
func (sh *shard) valueAt(row, col int) Value {
	return sh.blocks[row>>blockShift][col<<blockShift|row&blockMask]
}

// rowEqual reports whether the stored row equals t.
func (sh *shard) rowEqual(row int, t Tuple) bool {
	blk := sh.blocks[row>>blockShift]
	off := row & blockMask
	for c, v := range t {
		if blk[c<<blockShift|off] != v {
			return false
		}
	}
	return true
}

// findLocked probes the dedup table for t (hash h), returning its row id
// or -1. Dead slots are skipped but do not end the probe chain. Caller
// holds the shard lock (read or write).
func (sh *shard) findLocked(t Tuple, h uint32) int {
	if len(sh.slots) == 0 {
		return -1
	}
	mask := uint32(len(sh.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := sh.slots[i]
		if s == 0 {
			return -1
		}
		if s != slotDead && sh.hashes[i] == h && sh.rowEqual(int(s-1), t) {
			return int(s - 1)
		}
	}
}

// growTableLocked (re)builds the dedup table at the next power-of-two
// capacity, rehashing occupied slots from their stored hashes. Dead
// slots are dropped, which is what reclaims probe-chain length after
// retraction churn.
func (sh *shard) growTableLocked() {
	newCap := 2 * len(sh.slots)
	if newCap < 16 {
		newCap = 16
	}
	sh.rebuildTableLocked(newCap)
}

// reserveLocked grows the dedup table once to fit extra more entries
// below the 3/4 load threshold, replacing the doubling-rehash cascade a
// large batch would otherwise trigger. Caller holds the write lock.
func (sh *shard) reserveLocked(extra int) {
	need := sh.used + extra
	newCap := len(sh.slots)
	if newCap < 16 {
		newCap = 16
	}
	for 4*need > 3*newCap {
		newCap *= 2
	}
	if newCap != len(sh.slots) {
		sh.rebuildTableLocked(newCap)
	}
}

func (sh *shard) rebuildTableLocked(newCap int) {
	slots := make([]int32, newCap)
	hashes := make([]uint32, newCap)
	mask := uint32(newCap - 1)
	used := 0
	for i, s := range sh.slots {
		if s == 0 || s == slotDead {
			continue
		}
		h := sh.hashes[i]
		j := h & mask
		for slots[j] != 0 {
			j = (j + 1) & mask
		}
		slots[j], hashes[j] = s, h
		used++
	}
	sh.slots, sh.hashes, sh.used = slots, hashes, used
}

// containsHash reports whether t (hash h) is present and live. Caller
// holds the shard lock in either mode; the probe reads only slot, hash,
// and block state, all of which mutate under the write lock.
func (sh *shard) containsHash(t Tuple, h uint32) bool {
	if len(sh.slots) == 0 {
		return false
	}
	mask := uint32(len(sh.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := sh.slots[i]
		if s == 0 {
			return false
		}
		if s != slotDead && sh.hashes[i] == h && sh.rowEqual(int(s-1), t) {
			return true
		}
	}
}

// insertLocked adds t (hash h) unless present, returning the row id and
// whether the row is new. Caller holds the write lock.
func (sh *shard) insertLocked(t Tuple, h uint32, arity int) (int, bool) {
	// Grow at 3/4 load (counting dead slots, which probes still walk)
	// so chains stay short.
	if 4*(sh.used+1) > 3*len(sh.slots) {
		sh.growTableLocked()
	}
	mask := uint32(len(sh.slots) - 1)
	reuse := -1
	for i := h & mask; ; i = (i + 1) & mask {
		s := sh.slots[i]
		if s == slotDead {
			if reuse < 0 {
				reuse = int(i)
			}
			continue
		}
		if s == 0 {
			row := sh.rows
			if row&blockMask == 0 {
				sh.blocks = append(sh.blocks, make([]Value, arity<<blockShift))
				sh.dead = append(sh.dead, make([]uint64, deadWords))
			}
			blk := sh.blocks[row>>blockShift]
			off := row & blockMask
			for c, v := range t {
				blk[c<<blockShift|off] = v
			}
			sh.rows = row + 1
			slot := uint32(i)
			if reuse >= 0 {
				slot = uint32(reuse) // reclaim a dead slot on the probe path
			} else {
				sh.used++
			}
			sh.slots[slot] = int32(row + 1)
			sh.hashes[slot] = h
			return row, true
		}
		if sh.hashes[i] == h && sh.rowEqual(int(s-1), t) {
			return int(s - 1), false
		}
	}
}

// retractLocked tombstones t (hash h) if live, returning its row id or
// -1 when absent. The dedup slot is marked dead (so the tuple can be
// re-inserted as a fresh row) and the row's tombstone bit set. Caller
// holds the write lock.
func (sh *shard) retractLocked(t Tuple, h uint32) int {
	if len(sh.slots) == 0 {
		return -1
	}
	mask := uint32(len(sh.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := sh.slots[i]
		if s == 0 {
			return -1
		}
		if s != slotDead && sh.hashes[i] == h && sh.rowEqual(int(s-1), t) {
			row := int(s - 1)
			sh.slots[i] = slotDead
			w := &sh.dead[row>>blockShift][(row&blockMask)>>6]
			atomic.StoreUint64(w, atomic.LoadUint64(w)|1<<(uint(row)&63))
			sh.deadCnt++
			// Tombstone compaction: past half dead, drop the posting
			// lists so the next lookup rebuilds them from live rows only.
			if 2*sh.deadCnt > sh.rows {
				for c := range sh.cols {
					sh.cols[c] = nil
				}
			}
			return row
		}
	}
}

// isDeadLocked reports whether row is tombstoned. Caller holds the shard
// lock (read or write).
func (sh *shard) isDeadLocked(row int) bool {
	return atomic.LoadUint64(&sh.dead[row>>blockShift][(row&blockMask)>>6])>>(uint(row)&63)&1 == 1
}

// shardView is a snapshot of a shard's rows, capturable in O(1): the
// block list and the row count at capture time. Blocks are append-only
// and rows are fully written before the row count (read under the lock)
// covers them, so reading rows < v.rows off a view races with nothing —
// concurrent inserts touch only elements the view never reads.
//
// dead is the tombstone bitset list, captured only when the shard had
// tombstones at capture time (nil otherwise, keeping the insert-only
// fast path free of per-row checks). Tombstone bits are read with
// atomic loads and set concurrently by writers, so a view may observe a
// retraction that happened after capture: iteration yields rows live at
// some instant during the scan rather than a frozen cut. The epoch/delta
// protocol absorbs the skew — any mutation a reader misses or
// half-observes carries a stamp the next DeltaSince reconstructs.
type shardView struct {
	blocks [][]Value
	dead   [][]uint64
	rows   int
}

// view captures a snapshot of the shard.
func (sh *shard) view() shardView {
	sh.mu.RLock()
	v := shardView{blocks: sh.blocks[:len(sh.blocks):len(sh.blocks)], rows: sh.rows}
	if sh.deadCnt > 0 {
		v.dead = sh.dead[:len(sh.dead):len(sh.dead)]
	}
	sh.mu.RUnlock()
	return v
}

// isDead reports whether row is tombstoned (always false for views
// captured from shards with no tombstones).
func (v shardView) isDead(row int) bool {
	if v.dead == nil {
		return false
	}
	return atomic.LoadUint64(&v.dead[row>>blockShift][(row&blockMask)>>6])>>(uint(row)&63)&1 == 1
}

// read copies row's columns into dst (len(dst) = arity).
func (v shardView) read(row int, dst Tuple) {
	blk := v.blocks[row>>blockShift]
	off := row & blockMask
	for c := range dst {
		dst[c] = blk[c<<blockShift|off]
	}
}

// ShardColumn is the column whose value routes a tuple to its shard. The
// Fig. 9 loop probes the join column of the recursive rule's EDB atoms,
// which for the canonical left-linear shapes is the first column, so
// hashing column 0 lets a probe bound on it touch exactly one shard while
// keeping concurrent inserts spread across all of them.
const ShardColumn = 0

// Relation is a set of tuples of fixed arity, hash-sharded on ShardColumn
// into independently-locked partitions. Each shard stores its tuples
// columnar in arena blocks with an open-addressing dedup table and
// lazily built per-column posting-list indexes — inserts and membership
// probes allocate nothing on the steady state. The zero value is not
// usable; construct with NewRelation (one shard) or NewShardedRelation.
// Methods are safe for concurrent use; with n shards, n concurrent
// writers make progress independently as long as their tuples hash to
// different partitions. See the package comment for the snapshot
// semantics of iteration.
type Relation struct {
	arity int
	stats *Counters
	count atomic.Int64
	// name is the predicate this relation serves inside a Database ("" for
	// free-standing relations such as answer sets); journal, when non-nil,
	// receives every accepted insert. The pointer indirection lets a
	// journal attach while readers are in flight (Database.SetJournal).
	name    string
	journal atomic.Pointer[Journal]
	// db, when non-nil, is the tracked database this relation belongs to:
	// mutations are stamped with its epoch counter, recorded in the shard
	// delta tails, and reflected in its modification watermark. Derived
	// and free-standing relations (answer sets, seen-sets, semi-naive IDB
	// databases) leave it nil and pay no tracking overhead.
	db *Database
	// lastMod is the epoch stamp of the newest accepted mutation (0 when
	// the relation is untracked or empty).
	lastMod atomic.Uint64
	// tombs counts tombstoned rows across shards; retracts counts
	// accepted retractions since creation (never reset — the WAL's
	// differential-checkpoint decision compares it against the manifest,
	// since "unchanged count" no longer implies "identical set" once a
	// relation has seen removals).
	tombs    atomic.Int64
	retracts atomic.Int64
	// shardShift turns the 32-bit hash of the routing value into a shard
	// index: idx = hash >> shardShift. len(shards) is a power of two.
	shardShift uint32
	shards     []shard
}

// NewRelation creates an empty single-shard relation of the given arity,
// reporting instrumentation to stats (which may be nil). Single-shard
// relations have no routing overhead; use NewShardedRelation for
// relations written by concurrent workers.
func NewRelation(arity int, stats *Counters) *Relation {
	return NewShardedRelation(arity, stats, 1)
}

// NewShardedRelation creates an empty relation partitioned into nshards
// independently-locked shards (rounded up to a power of two; values < 1,
// and any value for arity-0 relations, mean one shard).
func NewShardedRelation(arity int, stats *Counters, nshards int) *Relation {
	n := 1
	if arity > 0 {
		for n < nshards {
			n <<= 1
		}
	}
	r := &Relation{
		arity:      arity,
		stats:      stats,
		shardShift: 32 - log2(n),
		shards:     make([]shard, n),
	}
	for i := range r.shards {
		r.shards[i].cols = make([]map[Value][]int32, arity)
	}
	return r
}

// log2 returns the exponent of a power of two.
func log2(n int) uint32 {
	var e uint32
	for n > 1 {
		n >>= 1
		e++
	}
	return e
}

// shardIndex routes a value of ShardColumn to a shard ordinal via a
// multiplicative (Fibonacci) hash: interned Values are dense small
// integers, so the multiply spreads consecutive values across shards.
func (r *Relation) shardIndex(v Value) int {
	return int((uint32(v) * 2654435761) >> r.shardShift)
}

// shardFor returns the shard holding tuples with t's routing value.
func (r *Relation) shardFor(t Tuple) *shard {
	if len(r.shards) == 1 {
		return &r.shards[0]
	}
	return &r.shards[r.shardIndex(t[ShardColumn])]
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Shards returns the number of partitions.
func (r *Relation) Shards() int { return len(r.shards) }

// Len returns the number of live tuples.
func (r *Relation) Len() int { return int(r.count.Load()) }

// Retracts returns the number of retractions the relation has accepted
// since creation (monotone; it never decreases).
func (r *Relation) Retracts() int64 { return r.retracts.Load() }

// Insert adds a tuple (copied into the shard's column blocks), returning
// true when it was not already present. Only the tuple's shard is
// locked, so inserts from parallel workers serialize only on hash
// collisions; the steady-state path allocates nothing (block and table
// growth amortize). On a tracked relation (one created by a Database)
// the accepted insert is stamped with the database's current epoch,
// appended to the shard's delta tail, and the epoch counter is
// advanced — the bookkeeping DeltaSince and the engine's result cache
// run on.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
	}
	h := HashTuple(t)
	sh := r.shardFor(t)
	sh.mu.Lock()
	row, fresh := sh.insertLocked(t, h, r.arity)
	if !fresh {
		sh.mu.Unlock()
		return false
	}
	for c, idx := range sh.cols {
		if idx != nil {
			idx[t[c]] = append(idx[t[c]], int32(row))
		}
	}
	var stamp uint64
	if r.db != nil {
		// The stamp is read inside the critical section so tail epochs are
		// monotone per shard.
		stamp = r.db.epoch.Load()
		sh.tailAppendLocked(tailEntry{row: row, epoch: stamp})
	}
	sh.mu.Unlock()
	r.count.Add(1)
	if r.db != nil {
		storeMax(&r.lastMod, stamp)
		storeMax(&r.db.lastMod, stamp)
		r.db.mutations.Add(1)
		r.db.epoch.Add(1)
	}
	if r.stats != nil {
		atomic.AddInt64(&r.stats.Inserts, 1)
	}
	if jp := r.journal.Load(); jp != nil {
		(*jp).JournalFact(r.name, t)
	}
	if r.db != nil {
		r.db.notifyWatchers()
	}
	return true
}

// Offer is Insert tuned for duplicate-heavy concurrent callers — the
// evaluator's answer and seen sets, where most offered tuples are
// already present. A read-locked probe rejects duplicates without
// touching the shard's write lock, so parallel workers re-offering
// known tuples don't serialize; only first sightings fall through to
// Insert (which re-checks under the write lock, keeping the claim
// exactly-once under races). Fresh-heavy callers should use Insert
// directly: the extra probe is pure overhead there.
func (r *Relation) Offer(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: offering arity-%d tuple to arity-%d relation", len(t), r.arity))
	}
	h := HashTuple(t)
	sh := r.shardFor(t)
	sh.mu.RLock()
	dup := sh.containsHash(t, h)
	sh.mu.RUnlock()
	if dup {
		return false
	}
	return r.Insert(t)
}

// Retract removes a tuple, returning true when it was present. The row
// is tombstoned in place — blocks never move, so lock-free views stay
// sound — its dedup slot is freed (a later Insert of the same tuple
// appends a fresh row), and posting lists filter the dead row lazily
// until the shard's compaction threshold drops them for a rebuild. On a
// tracked relation the accepted retraction is stamped with the
// database's current epoch, appended to the shard's delta tail as a
// signed (negative) entry, and advances the epoch counter, exactly like
// an insert: Database.Epoch stays monotone, and DeltaSince reports the
// tuple on the Removed side.
func (r *Relation) Retract(t Tuple) bool {
	if len(t) != r.arity {
		panic(fmt.Sprintf("storage: retracting arity-%d tuple from arity-%d relation", len(t), r.arity))
	}
	h := HashTuple(t)
	sh := r.shardFor(t)
	sh.mu.Lock()
	row := sh.retractLocked(t, h)
	if row < 0 {
		sh.mu.Unlock()
		return false
	}
	var stamp uint64
	if r.db != nil {
		stamp = r.db.epoch.Load()
		sh.tailAppendLocked(tailEntry{row: row, epoch: stamp, del: true})
	}
	sh.mu.Unlock()
	r.count.Add(-1)
	r.tombs.Add(1)
	r.retracts.Add(1)
	if r.db != nil {
		storeMax(&r.lastMod, stamp)
		storeMax(&r.db.lastMod, stamp)
		r.db.mutations.Add(1)
		r.db.epoch.Add(1)
	}
	if r.stats != nil {
		atomic.AddInt64(&r.stats.Retracts, 1)
	}
	if jp := r.journal.Load(); jp != nil {
		(*jp).JournalRetract(r.name, t)
	}
	if r.db != nil {
		r.db.notifyWatchers()
	}
	return true
}

// tailAppendLocked records one mutation in the shard's delta tail. Past
// the bound the oldest half is evicted and the floor rises past the
// newest evicted stamp, so incomplete coverage is never served. Caller
// holds the write lock.
func (sh *shard) tailAppendLocked(e tailEntry) {
	sh.tail = append(sh.tail, e)
	if len(sh.tail) > deltaTailBound {
		drop := len(sh.tail) / 2
		sh.tailFloor = sh.tail[drop-1].epoch + 1
		sh.tail = append(sh.tail[:0], sh.tail[drop:]...)
	}
}

// batchOrder groups a batch's tuple indexes by destination shard with a
// counting sort, preserving input order within each shard: order holds
// the indexes of shard 0's tuples, then shard 1's, and so on, with
// starts[s] the offset of shard s's run. hashes carries each tuple's
// precomputed HashTuple.
func (r *Relation) batchOrder(tuples []Tuple) (order []int32, starts []int32, hashes []uint32) {
	n := len(tuples)
	hashes = make([]uint32, n)
	nsh := len(r.shards)
	if nsh == 1 {
		order = make([]int32, n)
		for i, t := range tuples {
			hashes[i] = HashTuple(t)
			order[i] = int32(i)
		}
		return order, []int32{0, int32(n)}, hashes
	}
	shardOf := make([]int32, n)
	starts = make([]int32, nsh+1)
	for i, t := range tuples {
		hashes[i] = HashTuple(t)
		s := int32(r.shardIndex(t[ShardColumn]))
		shardOf[i] = s
		starts[s+1]++
	}
	for s := 0; s < nsh; s++ {
		starts[s+1] += starts[s]
	}
	order = make([]int32, n)
	next := make([]int32, nsh)
	copy(next, starts[:nsh])
	for i := range tuples {
		s := shardOf[i]
		order[next[s]] = int32(i)
		next[s]++
	}
	return order, starts, hashes
}

// journalRun reports a batch's accepted tuples to the journal: as one
// buffered run when the journal is a BatchJournal (one policy sync for
// the whole run), per tuple otherwise. accepted marks which input
// tuples to report, in input order.
func (r *Relation) journalRun(j Journal, tuples []Tuple, accepted []bool, added int, retract bool) {
	run := make([]Tuple, 0, added)
	for i, ok := range accepted {
		if ok {
			run = append(run, tuples[i])
		}
	}
	if bj, ok := j.(BatchJournal); ok {
		if retract {
			bj.JournalRetractBatch(r.name, run)
		} else {
			bj.JournalFactBatch(r.name, run)
		}
		return
	}
	for _, t := range run {
		if retract {
			j.JournalRetract(r.name, t)
		} else {
			j.JournalFact(r.name, t)
		}
	}
}

// InsertBatch inserts a run of tuples under Insert's exact per-tuple
// protocol with the fixed costs amortized across the batch: tuples are
// grouped per shard, each touched shard is locked once and all of its
// delta-tail entries stamped with one epoch reading (taken under that
// shard's lock, keeping tail epochs monotone), the database epoch
// advances once for the whole batch, accepted tuples reach the journal
// as one buffered run (one fsync under SyncAlways when the journal is a
// BatchJournal), and watchers are notified once — so a subscription
// sees the batch as one delta round. Returns the number of tuples that
// were genuinely new; duplicates inside the batch collapse exactly as
// repeated Inserts would. The tuples are copied into the column blocks
// as usual.
func (r *Relation) InsertBatch(tuples []Tuple) int {
	if len(tuples) == 0 {
		return 0
	}
	if len(tuples) == 1 {
		if r.Insert(tuples[0]) {
			return 1
		}
		return 0
	}
	for _, t := range tuples {
		if len(t) != r.arity {
			panic(fmt.Sprintf("storage: inserting arity-%d tuple into arity-%d relation", len(t), r.arity))
		}
	}
	order, starts, hashes := r.batchOrder(tuples)
	accepted := make([]bool, len(tuples))
	added := 0
	var maxStamp uint64
	for s := 0; s+1 < len(starts); s++ {
		idxs := order[starts[s]:starts[s+1]]
		if len(idxs) == 0 {
			continue
		}
		sh := &r.shards[s]
		sh.mu.Lock()
		sh.reserveLocked(len(idxs))
		var stamp uint64
		if r.db != nil {
			stamp = r.db.epoch.Load()
		}
		for _, i := range idxs {
			t := tuples[i]
			row, fresh := sh.insertLocked(t, hashes[i], r.arity)
			if !fresh {
				continue
			}
			for c, idx := range sh.cols {
				if idx != nil {
					idx[t[c]] = append(idx[t[c]], int32(row))
				}
			}
			if r.db != nil {
				sh.tailAppendLocked(tailEntry{row: row, epoch: stamp})
			}
			accepted[i] = true
			added++
		}
		sh.mu.Unlock()
		if stamp > maxStamp {
			maxStamp = stamp
		}
	}
	if added == 0 {
		return 0
	}
	r.count.Add(int64(added))
	if r.db != nil {
		storeMax(&r.lastMod, maxStamp)
		storeMax(&r.db.lastMod, maxStamp)
		r.db.mutations.Add(int64(added))
		r.db.epoch.Add(1)
	}
	if r.stats != nil {
		atomic.AddInt64(&r.stats.Inserts, int64(added))
	}
	if jp := r.journal.Load(); jp != nil {
		r.journalRun(*jp, tuples, accepted, added, false)
	}
	if r.db != nil {
		r.db.notifyWatchers()
	}
	return added
}

// RetractBatch retracts a run of tuples under Retract's exact per-tuple
// protocol with the fixed costs amortized like InsertBatch: one lock
// acquisition and one epoch stamp per touched shard, one epoch advance,
// one journal run, one watcher notification. Returns the number of
// tuples that were present (and are now tombstoned).
func (r *Relation) RetractBatch(tuples []Tuple) int {
	if len(tuples) == 0 {
		return 0
	}
	if len(tuples) == 1 {
		if r.Retract(tuples[0]) {
			return 1
		}
		return 0
	}
	for _, t := range tuples {
		if len(t) != r.arity {
			panic(fmt.Sprintf("storage: retracting arity-%d tuple from arity-%d relation", len(t), r.arity))
		}
	}
	order, starts, hashes := r.batchOrder(tuples)
	accepted := make([]bool, len(tuples))
	removed := 0
	var maxStamp uint64
	for s := 0; s+1 < len(starts); s++ {
		idxs := order[starts[s]:starts[s+1]]
		if len(idxs) == 0 {
			continue
		}
		sh := &r.shards[s]
		sh.mu.Lock()
		var stamp uint64
		if r.db != nil {
			stamp = r.db.epoch.Load()
		}
		for _, i := range idxs {
			row := sh.retractLocked(tuples[i], hashes[i])
			if row < 0 {
				continue
			}
			if r.db != nil {
				sh.tailAppendLocked(tailEntry{row: row, epoch: stamp, del: true})
			}
			accepted[i] = true
			removed++
		}
		sh.mu.Unlock()
		if stamp > maxStamp {
			maxStamp = stamp
		}
	}
	if removed == 0 {
		return 0
	}
	r.count.Add(int64(-removed))
	r.tombs.Add(int64(removed))
	r.retracts.Add(int64(removed))
	if r.db != nil {
		storeMax(&r.lastMod, maxStamp)
		storeMax(&r.db.lastMod, maxStamp)
		r.db.mutations.Add(int64(removed))
		r.db.epoch.Add(1)
	}
	if r.stats != nil {
		atomic.AddInt64(&r.stats.Retracts, int64(removed))
	}
	if jp := r.journal.Load(); jp != nil {
		r.journalRun(*jp, tuples, accepted, removed, true)
	}
	if r.db != nil {
		r.db.notifyWatchers()
	}
	return removed
}

// storeMax raises a to at least v.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// LastModified returns the epoch stamp of the relation's newest accepted
// insert (0 for an untracked or empty relation). An entry built at stamp
// S is stale exactly when LastModified() >= S.
func (r *Relation) LastModified() uint64 { return r.lastMod.Load() }

// SignedDelta is DeltaSince's result: the tuples that entered and left
// the relation over the requested window, netted against the current
// state — a tuple retracted and later re-inserted appears only in Added,
// one inserted and later retracted only in Removed, so applying "remove
// Removed, add Added" to the caller's stale view converges on the
// relation's present tuple set regardless of interleaving.
type SignedDelta struct {
	Added   []Tuple
	Removed []Tuple
}

// Empty reports whether the delta carries no change.
func (d SignedDelta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// DeltaSince returns the signed delta of mutations accepted with an
// epoch stamp >= epoch. ok is false when the delta cannot be
// reconstructed — the relation is untracked, or some shard's tail
// evicted entries the request needs — in which case the caller must
// fall back to treating the relation as fully changed. The returned
// tuples are fresh copies backed by one arena per shard: they never
// alias the live column blocks, so they stay valid however the relation
// is mutated afterwards. Tuples stamped exactly at the requested epoch
// may overlap state the caller already has; replaying them is
// idempotent under set semantics.
func (r *Relation) DeltaSince(epoch uint64) (SignedDelta, bool) {
	var out SignedDelta
	if r.db == nil {
		return out, false
	}
	if r.lastMod.Load() < epoch {
		return out, true
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		if sh.tailFloor > epoch {
			sh.mu.RUnlock()
			return SignedDelta{}, false
		}
		lo := sort.Search(len(sh.tail), func(k int) bool { return sh.tail[k].epoch >= epoch })
		if n := len(sh.tail) - lo; n > 0 {
			arena := make([]Value, n*r.arity)
			for j, te := range sh.tail[lo:] {
				dst := Tuple(arena[j*r.arity : (j+1)*r.arity])
				for c := range dst {
					dst[c] = sh.valueAt(te.row, c)
				}
				// Net each entry against the current state: an insert
				// whose row has since died (or a retraction whose tuple
				// is live again) cancelled out inside the window.
				if te.del {
					if sh.findLocked(dst, HashTuple(dst)) < 0 {
						out.Removed = append(out.Removed, dst)
					}
				} else if !sh.isDeadLocked(te.row) {
					out.Added = append(out.Added, dst)
				}
			}
		}
		sh.mu.RUnlock()
	}
	return out, true
}

// Contains reports membership, locking only the tuple's shard. It
// allocates nothing.
func (r *Relation) Contains(t Tuple) bool {
	h := HashTuple(t)
	sh := r.shardFor(t)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.findLocked(t, h) >= 0
}

// Tuples returns a materialized snapshot of the tuple set, backed by a
// single value arena (two allocations however many tuples there are).
// The snapshot never aliases live column blocks; callers must still not
// modify it (tuples share the arena). For sharded relations the
// per-shard segments concatenate, so global insertion order is not
// preserved — use SortedTuples for deterministic order. This accessor is
// not instrumented; use Scan for measured access.
func (r *Relation) Tuples() []Tuple {
	views := make([]shardView, len(r.shards))
	total := 0
	for i := range r.shards {
		views[i] = r.shards[i].view()
		total += views[i].rows
	}
	out := make([]Tuple, total)
	arena := make([]Value, total*r.arity)
	k := 0
	for _, v := range views {
		for row := 0; row < v.rows; row++ {
			if v.isDead(row) {
				continue
			}
			dst := Tuple(arena[k*r.arity : (k+1)*r.arity])
			v.read(row, dst)
			out[k] = dst
			k++
		}
	}
	return out[:k]
}

// Scan iterates a snapshot of the tuples, recording one full scan. The
// yielded tuple is a reused scratch buffer, valid only until yield
// returns — copy it to keep it. Tuples are counted as examined only up
// to the point the caller stops.
func (r *Relation) Scan(yield func(Tuple) bool) {
	r.scanBuf(make(Tuple, r.arity), yield)
}

// scanBuf is Scan yielding through the caller's buffer (len >= arity).
func (r *Relation) scanBuf(buf Tuple, yield func(Tuple) bool) {
	if r.stats != nil {
		atomic.AddInt64(&r.stats.FullScans, 1)
	}
	scratch := buf[:r.arity]
	examined := int64(0)
	defer func() {
		if r.stats != nil && examined > 0 {
			atomic.AddInt64(&r.stats.TuplesExamined, examined)
		}
	}()
	for i := range r.shards {
		v := r.shards[i].view()
		for row := 0; row < v.rows; row++ {
			if v.isDead(row) {
				continue
			}
			v.read(row, scratch)
			examined++
			if !yield(scratch) {
				return
			}
		}
	}
}

// ensureIndexLocked builds the shard's posting-list index for a column
// from the live rows (tombstoned rows are left out — the compaction
// path relies on this). The caller must hold the shard's write lock.
func (sh *shard) ensureIndexLocked(col int) {
	if sh.cols[col] == nil {
		idx := make(map[Value][]int32)
		for row := 0; row < sh.rows; row++ {
			if sh.deadCnt > 0 && sh.isDeadLocked(row) {
				continue
			}
			v := sh.valueAt(row, col)
			idx[v] = append(idx[v], int32(row))
		}
		sh.cols[col] = idx
	}
}

// Binding is a column/value restriction for Lookup.
type Binding struct {
	Col int
	Val Value
}

// Lookup iterates the tuples matching all bindings. With at least one
// binding it probes posting-list indexes — per shard, the index of the
// most selective bound column, the one whose posting list for its value
// is shortest — and filters the remaining bindings row by row against
// the column blocks; with none it degrades to a full scan. A binding on
// ShardColumn restricts the probe to the single shard that can hold
// matches; otherwise every shard is probed. IndexLookups counts one
// probe per shard actually probed — a ShardColumn-bound lookup costs 1,
// an unrouted lookup over n shards costs up to n (fewer when yield stops
// the iteration early) — so the Property-3 accounting reflects the real
// number of restricted index probes rather than the number of Lookup
// calls. Indexes for bound columns are built per shard on first use, so
// selectivity is compared on actual posting lists rather than guessed.
//
// The yielded tuple is a reused scratch buffer, valid only until yield
// returns — copy it to keep it.
func (r *Relation) Lookup(bindings []Binding, yield func(Tuple) bool) {
	r.LookupBuf(bindings, make(Tuple, r.arity), yield)
}

// LookupBuf is Lookup yielding through the caller's buffer (len >=
// arity) — the zero-allocation probe path for evaluator inner loops that
// hold one buffer per goroutine.
func (r *Relation) LookupBuf(bindings []Binding, buf Tuple, yield func(Tuple) bool) {
	if len(bindings) == 0 {
		r.scanBuf(buf, yield)
		return
	}
	scratch := buf[:r.arity]
	if len(r.shards) > 1 {
		for _, b := range bindings {
			if b.Col == ShardColumn {
				r.shards[r.shardIndex(b.Val)].lookup(bindings, r.stats, scratch, yield)
				return
			}
		}
	}
	for i := range r.shards {
		if !r.shards[i].lookup(bindings, r.stats, scratch, yield) {
			return
		}
	}
}

// lookup probes one shard, recording one index probe, and returns false
// when yield stopped the iteration.
func (sh *shard) lookup(bindings []Binding, stats *Counters, scratch Tuple, yield func(Tuple) bool) bool {
	if stats != nil {
		atomic.AddInt64(&stats.IndexLookups, 1)
	}
	sh.mu.RLock()
	missing := false
	for _, b := range bindings {
		if sh.cols[b.Col] == nil {
			missing = true
			break
		}
	}
	if missing {
		sh.mu.RUnlock()
		sh.mu.Lock()
		for _, b := range bindings {
			sh.ensureIndexLocked(b.Col)
		}
		sh.mu.Unlock()
		sh.mu.RLock()
	}
	// Probe the most selective bound column: shortest posting list wins.
	probe := 0
	rows := sh.cols[bindings[0].Col][bindings[0].Val]
	for i, b := range bindings[1:] {
		if cand := sh.cols[b.Col][b.Val]; len(cand) < len(rows) {
			probe, rows = i+1, cand
		}
	}
	// Posting entries reference rows fully written before the list grew
	// (both under the write lock), so reading the blocks after release is
	// race-free — see shardView. Lists may still name rows tombstoned
	// since they were built; the dead-bit check filters them lazily.
	v := shardView{blocks: sh.blocks[:len(sh.blocks):len(sh.blocks)], rows: sh.rows}
	if sh.deadCnt > 0 {
		v.dead = sh.dead[:len(sh.dead):len(sh.dead)]
	}
	sh.mu.RUnlock()

	examined := int64(0)
outer:
	for _, row := range rows {
		if v.isDead(int(row)) {
			continue
		}
		v.read(int(row), scratch)
		examined++
		for i, b := range bindings {
			if i == probe {
				continue
			}
			if scratch[b.Col] != b.Val {
				continue outer
			}
		}
		if !yield(scratch) {
			if stats != nil && examined > 0 {
				atomic.AddInt64(&stats.TuplesExamined, examined)
			}
			return false
		}
	}
	if stats != nil && examined > 0 {
		atomic.AddInt64(&stats.TuplesExamined, examined)
	}
	return true
}

// Equal reports whether two relations hold the same tuple sets.
func (r *Relation) Equal(o *Relation) bool {
	if r == o {
		return true
	}
	if r.arity != o.arity {
		return false
	}
	if r.Len() != o.Len() {
		return false
	}
	scratch := make(Tuple, r.arity)
	for i := range r.shards {
		v := r.shards[i].view()
		for row := 0; row < v.rows; row++ {
			if v.isDead(row) {
				continue
			}
			v.read(row, scratch)
			if !o.Contains(scratch) {
				return false
			}
		}
	}
	return true
}

// SortedTuples returns the tuples in lexicographic order (fresh
// arena-backed slice), for deterministic output.
func (r *Relation) SortedTuples() []Tuple {
	out := r.Tuples()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// SortedColumns returns the tuple set column-major in lexicographic row
// order: cols[c][i] is the i-th sorted tuple's value in column c, all
// columns backed by one arena. rows is the tuple count (arity-0
// relations have no columns, so rows alone carries their 0-or-1 count).
// This is the WAL snapshot writer's extraction path: the whole relation
// serializes from a handful of allocations, with no per-tuple re-boxing.
func (r *Relation) SortedColumns() (cols [][]Value, rows int) {
	ts := r.SortedTuples()
	rows = len(ts)
	if r.arity == 0 {
		return nil, rows
	}
	arena := make([]Value, rows*r.arity)
	cols = make([][]Value, r.arity)
	for c := range cols {
		col := arena[c*rows : (c+1)*rows]
		for i, t := range ts {
			col[i] = t[c]
		}
		cols[c] = col
	}
	return cols, rows
}

// defaultShards picks the shard count for a database's relations: the
// smallest power of two covering GOMAXPROCS, capped at 64.
func defaultShards() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}

// Database is a named collection of relations sharing a symbol table and
// instrumentation counters. It is safe for concurrent use. Relations
// created through Ensure/AddFact are sharded according to the database's
// shard setting (default: smallest power of two >= GOMAXPROCS).
//
// A primary database (NewDatabase) tracks epochs: every accepted insert
// into one of its relations is stamped with the current epoch, recorded
// in a bounded per-shard delta tail (Relation.DeltaSince), and advances
// the counter. Derived databases (NewDatabaseWith — semi-naive IDB
// state, magic-set scratch space) skip the tracking entirely.
type Database struct {
	Stats Counters // first field: keeps the atomics 64-bit aligned on 32-bit platforms
	Syms  *SymbolTable

	// epoch is the monotone mutation counter; lastMod the highest stamp
	// any accepted mutation received; mutations the accepted-mutation
	// count, inserts and retractions alike (the auto-checkpoint trigger).
	// All zero for derived databases.
	epoch     atomic.Uint64
	lastMod   atomic.Uint64
	mutations atomic.Int64
	track     bool

	mu      sync.RWMutex
	rels    map[string]*Relation
	shards  int
	journal Journal

	// watchers are the mutation-notification channels handed out by
	// Watch (live subscriptions block on them); hasWatch keeps the
	// accepted-mutation hot path to a single atomic load when nobody is
	// watching.
	watchMu  sync.Mutex
	watchers map[int]chan struct{}
	watchSeq int
	hasWatch atomic.Bool
}

// NewDatabase creates an empty epoch-tracked database with a fresh
// symbol table.
func NewDatabase() *Database {
	return &Database{Syms: NewSymbolTable(), rels: make(map[string]*Relation), shards: defaultShards(), track: true}
}

// NewDatabaseWith creates an empty database sharing an existing symbol
// table (used for derived/IDB databases). Derived databases do not track
// epochs: their relations stamp nothing and keep no delta tails.
func NewDatabaseWith(syms *SymbolTable) *Database {
	return &Database{Syms: syms, rels: make(map[string]*Relation), shards: defaultShards()}
}

// Epoch returns the database's current epoch. An evaluation that records
// Epoch() before reading any relation may later reconstruct everything
// it missed with DeltaSince(stamp) on each relation: every accepted
// insert not visible to it carries a stamp >= that reading.
func (db *Database) Epoch() uint64 { return db.epoch.Load() }

// LastModified returns the highest epoch stamp any accepted insert into
// this database received (0 when empty or untracked). State captured at
// stamp S is current iff LastModified() < S.
func (db *Database) LastModified() uint64 { return db.lastMod.Load() }

// Mutations returns the number of accepted mutations — inserts plus
// retractions — of the database's relations since creation (untracked
// databases always report 0).
func (db *Database) Mutations() int64 { return db.mutations.Load() }

// Watch registers a mutation watcher: the returned channel receives a
// (coalesced) signal after every accepted insert or retraction, and the
// cancel function unregisters it. The channel has a one-slot buffer and
// notification never blocks, so a slow watcher sees at least one signal
// for any burst of mutations — it re-reads Epoch and DeltaSince to find
// out what actually changed.
func (db *Database) Watch() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	db.watchMu.Lock()
	if db.watchers == nil {
		db.watchers = make(map[int]chan struct{})
	}
	id := db.watchSeq
	db.watchSeq++
	db.watchers[id] = ch
	db.hasWatch.Store(true)
	db.watchMu.Unlock()
	cancel := func() {
		db.watchMu.Lock()
		delete(db.watchers, id)
		if len(db.watchers) == 0 {
			db.hasWatch.Store(false)
		}
		db.watchMu.Unlock()
	}
	return ch, cancel
}

// notifyWatchers signals every registered watcher without blocking.
func (db *Database) notifyWatchers() {
	if !db.hasWatch.Load() {
		return
	}
	db.watchMu.Lock()
	for _, ch := range db.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	db.watchMu.Unlock()
}

// SetShards sets the shard count for relations created afterwards,
// rounded up to a power of two so the stored value matches what the
// relations actually get (< 1 means one shard). Existing relations keep
// their partitioning.
func (db *Database) SetShards(n int) {
	p := 1
	for p < n {
		p <<= 1
	}
	db.mu.Lock()
	db.shards = p
	db.mu.Unlock()
}

// Shards returns the shard count used for newly created relations.
func (db *Database) Shards() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.shards
}

// SetJournal attaches a journal (or detaches, with nil) to the database:
// every fresh symbol intern and every accepted insert into a relation of
// this database is reported to it from now on. State already present is
// not replayed — callers that need it durable write a snapshot (see
// internal/wal). Derived databases sharing this database's symbol table
// are not journaled: answer and magic relations live outside the
// journaled database, while their fresh symbol interns still flow
// through the shared table's hook, keeping logged Values dense and
// replayable.
func (db *Database) SetJournal(j Journal) {
	// Ordering: the intern hook installs before any relation can journal
	// a fact and uninstalls after the last relation detaches. A fact
	// record referencing a Value whose sym record was skipped makes the
	// log unrecoverable; the reverse — an orphan sym record — is
	// harmless. (Interns that raced ahead of the hook install count as
	// pre-attach state, covered by the caller's snapshot.)
	if j != nil {
		db.Syms.SetInternHook(j.JournalSym)
	}
	db.mu.Lock()
	db.journal = j
	for _, r := range db.rels {
		r.setJournal(j)
	}
	db.mu.Unlock()
	if j == nil {
		db.Syms.SetInternHook(nil)
	}
}

// setJournal installs the journal pointer (nil detaches).
func (r *Relation) setJournal(j Journal) {
	if j == nil {
		r.journal.Store(nil)
		return
	}
	r.journal.Store(&j)
}

// Relation returns the named relation, or nil.
func (db *Database) Relation(pred string) *Relation {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.rels[pred]
}

// Ensure returns the named relation, creating it with the given arity when
// missing.
func (db *Database) Ensure(pred string, arity int) *Relation {
	db.mu.RLock()
	r, ok := db.rels[pred]
	db.mu.RUnlock()
	if ok {
		if r.arity != arity {
			panic(fmt.Sprintf("storage: relation %s has arity %d, requested %d", pred, r.arity, arity))
		}
		return r
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if r, ok := db.rels[pred]; ok {
		if r.arity != arity {
			panic(fmt.Sprintf("storage: relation %s has arity %d, requested %d", pred, r.arity, arity))
		}
		return r
	}
	r = NewShardedRelation(arity, &db.Stats, db.shards)
	r.name = pred
	if db.track {
		r.db = db
	}
	r.setJournal(db.journal)
	db.rels[pred] = r
	return r
}

// Preds returns the sorted relation names.
func (db *Database) Preds() []string {
	db.mu.RLock()
	out := make([]string, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	db.mu.RUnlock()
	sort.Strings(out)
	return out
}

// AddFact interns the constant names and inserts the tuple into pred,
// reporting whether the tuple was genuinely new (false on a duplicate).
func (db *Database) AddFact(pred string, consts ...string) bool {
	t := make(Tuple, len(consts))
	for i, c := range consts {
		t[i] = db.Syms.Intern(c)
	}
	return db.Ensure(pred, len(consts)).Insert(t)
}

// RemoveFact retracts the named tuple from pred, reporting whether it
// was present. Unknown constants, an unknown predicate, or an arity
// mismatch all mean the tuple cannot be stored, so the result is false
// without interning anything.
func (db *Database) RemoveFact(pred string, consts ...string) bool {
	r := db.Relation(pred)
	if r == nil || r.arity != len(consts) {
		return false
	}
	t := make(Tuple, len(consts))
	for i, c := range consts {
		v, ok := db.Syms.Lookup(c)
		if !ok {
			return false
		}
		t[i] = v
	}
	return r.Retract(t)
}

// TupleCount returns the total number of tuples across relations.
func (db *Database) TupleCount() int {
	db.mu.RLock()
	rels := make([]*Relation, 0, len(db.rels))
	for _, r := range db.rels {
		rels = append(rels, r)
	}
	db.mu.RUnlock()
	n := 0
	for _, r := range rels {
		n += r.Len()
	}
	return n
}

// Dump renders the database deterministically, one fact per line, in the
// parser's concrete syntax: predicates in name order, each relation's
// facts in rendered-text order, constant names quoted whenever the lexer
// needs it ('New York', capitalized names, the '#N' rendering of an
// out-of-range Value) and arity-0 facts written "p." rather than "p().".
// The output re-parses to the same fact set — parser.Parse(db.Dump())
// followed by a reload reproduces db — and, because lines are ordered by
// their rendered text rather than by interned Values, the bytes are
// stable across processes that interned the same facts in different
// orders (the crash-recovery byte-identity check relies on this).
func (db *Database) Dump() string {
	var b strings.Builder
	for _, p := range db.Preds() {
		r := db.Relation(p)
		snap := r.Tuples()
		lines := make([]string, len(snap))
		for j, t := range snap {
			var l strings.Builder
			l.WriteString(quote.Atom(p))
			if len(t) > 0 {
				l.WriteByte('(')
				for i, v := range t {
					if i > 0 {
						l.WriteString(", ")
					}
					l.WriteString(quote.Atom(db.Syms.Name(v)))
				}
				l.WriteByte(')')
			}
			l.WriteString(".\n")
			lines[j] = l.String()
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
		}
	}
	return b.String()
}
