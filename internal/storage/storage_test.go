package storage

import (
	"testing"
	"testing/quick"
)

func TestSymbolTable(t *testing.T) {
	st := NewSymbolTable()
	a := st.Intern("alpha")
	b := st.Intern("beta")
	if a == b {
		t.Fatal("distinct names must intern to distinct values")
	}
	if st.Intern("alpha") != a {
		t.Fatal("re-interning must be stable")
	}
	if st.Name(a) != "alpha" || st.Name(b) != "beta" {
		t.Fatal("Name round trip failed")
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
	if _, ok := st.Lookup("gamma"); ok {
		t.Fatal("Lookup must not intern")
	}
	if st.Name(Value(99)) != "#99" {
		t.Fatal("unknown value should render as #id")
	}
}

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation(2, nil)
	if !r.Insert(Tuple{1, 2}) {
		t.Fatal("first insert should be new")
	}
	if r.Insert(Tuple{1, 2}) {
		t.Fatal("duplicate insert should report false")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(Tuple{1, 2}) || r.Contains(Tuple{2, 1}) {
		t.Fatal("Contains wrong")
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	r := NewRelation(1, nil)
	buf := Tuple{7}
	r.Insert(buf)
	buf[0] = 9
	if !r.Contains(Tuple{7}) || r.Contains(Tuple{9}) {
		t.Fatal("Insert must copy the tuple")
	}
}

func TestLookupWithIndex(t *testing.T) {
	var stats Counters
	r := NewRelation(2, &stats)
	r.Insert(Tuple{1, 10})
	r.Insert(Tuple{1, 11})
	r.Insert(Tuple{2, 10})

	var got []Tuple
	r.Lookup([]Binding{{Col: 0, Val: 1}}, func(t Tuple) bool {
		got = append(got, t.Clone())
		return true
	})
	if len(got) != 2 {
		t.Fatalf("got %d tuples", len(got))
	}
	if stats.IndexLookups != 1 || stats.FullScans != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.TuplesExamined != 2 {
		t.Fatalf("examined = %d", stats.TuplesExamined)
	}

	// Multi-binding: first column probes, second filters.
	got = nil
	r.Lookup([]Binding{{Col: 0, Val: 1}, {Col: 1, Val: 11}}, func(t Tuple) bool {
		got = append(got, t.Clone())
		return true
	})
	if len(got) != 1 || got[0][1] != 11 {
		t.Fatalf("filtered lookup got %v", got)
	}
}

func TestIndexStaysFreshAfterInsert(t *testing.T) {
	r := NewRelation(2, nil)
	r.Insert(Tuple{1, 10})
	count := 0
	r.Lookup([]Binding{{Col: 0, Val: 1}}, func(Tuple) bool { count++; return true })
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
	// Insert after the index was built: the index must pick it up.
	r.Insert(Tuple{1, 99})
	count = 0
	r.Lookup([]Binding{{Col: 0, Val: 1}}, func(Tuple) bool { count++; return true })
	if count != 2 {
		t.Fatalf("count after insert = %d", count)
	}
}

func TestScanCountsAsFullScan(t *testing.T) {
	var stats Counters
	r := NewRelation(1, &stats)
	r.Insert(Tuple{1})
	r.Insert(Tuple{2})
	n := 0
	r.Scan(func(Tuple) bool { n++; return true })
	if n != 2 {
		t.Fatalf("scanned %d", n)
	}
	if stats.FullScans != 1 || stats.TuplesExamined != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Lookup with no bindings degrades to a scan.
	r.Lookup(nil, func(Tuple) bool { return true })
	if stats.FullScans != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestScanEarlyStop(t *testing.T) {
	r := NewRelation(1, nil)
	for i := 0; i < 5; i++ {
		r.Insert(Tuple{Value(i)})
	}
	n := 0
	r.Scan(func(Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop failed: n=%d", n)
	}
}

func TestRelationEqual(t *testing.T) {
	a := NewRelation(2, nil)
	b := NewRelation(2, nil)
	a.Insert(Tuple{1, 2})
	b.Insert(Tuple{1, 2})
	if !a.Equal(b) {
		t.Fatal("equal relations reported unequal")
	}
	b.Insert(Tuple{3, 4})
	if a.Equal(b) {
		t.Fatal("unequal relations reported equal")
	}
}

func TestSortedTuples(t *testing.T) {
	r := NewRelation(2, nil)
	r.Insert(Tuple{2, 1})
	r.Insert(Tuple{1, 9})
	r.Insert(Tuple{1, 2})
	got := r.SortedTuples()
	want := []Tuple{{1, 2}, {1, 9}, {2, 1}}
	for i := range want {
		if tkey(got[i]) != tkey(want[i]) {
			t.Fatalf("sorted[%d] = %v", i, got[i])
		}
	}
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase()
	db.AddFact("edge", "a", "b")
	db.AddFact("edge", "b", "c")
	db.AddFact("node", "a")
	if db.Relation("edge").Len() != 2 {
		t.Fatal("edge should have 2 tuples")
	}
	if got := db.Preds(); len(got) != 2 || got[0] != "edge" || got[1] != "node" {
		t.Fatalf("preds = %v", got)
	}
	if db.TupleCount() != 3 {
		t.Fatalf("TupleCount = %d", db.TupleCount())
	}
	want := "edge(a, b).\nedge(b, c).\nnode(a).\n"
	if got := db.Dump(); got != want {
		t.Fatalf("dump = %q", got)
	}
}

func TestDatabaseSharedSymbols(t *testing.T) {
	db := NewDatabase()
	db.AddFact("p", "x")
	derived := NewDatabaseWith(db.Syms)
	derived.AddFact("q", "x")
	v1, _ := db.Syms.Lookup("x")
	if got := derived.Relation("q").Tuples()[0][0]; got != v1 {
		t.Fatal("shared symbol table must give identical values")
	}
}

func TestEnsureArityPanics(t *testing.T) {
	db := NewDatabase()
	db.Ensure("p", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	db.Ensure("p", 3)
}

func TestInsertArityPanics(t *testing.T) {
	r := NewRelation(2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	r.Insert(Tuple{1})
}

// TestQuickInsertDedupMatchesEquality property-tests the dedup table:
// equal tuples must hash identically (growth rehashes from stored
// hashes), and Insert must dedup on tuple equality exactly — hash
// collisions between distinct tuples may occur but must not conflate
// them.
func TestQuickInsertDedupMatchesEquality(t *testing.T) {
	f := func(a, b []int32) bool {
		ta := make(Tuple, len(a))
		for i, v := range a {
			ta[i] = Value(v)
		}
		tb := make(Tuple, len(b))
		for i, v := range b {
			tb[i] = Value(v)
		}
		if len(ta) != len(tb) {
			return true // relations are fixed-arity
		}
		same := true
		for i := range ta {
			if ta[i] != tb[i] {
				same = false
				break
			}
		}
		if same && HashTuple(ta) != HashTuple(tb) {
			return false
		}
		r := NewRelation(len(ta), nil)
		r.Insert(ta)
		return r.Insert(tb) == !same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCountersAddReset(t *testing.T) {
	a := Counters{TuplesExamined: 1, IndexLookups: 2, FullScans: 3, Inserts: 4}
	b := Counters{TuplesExamined: 10, IndexLookups: 20, FullScans: 30, Inserts: 40}
	a.Add(b)
	if a.TuplesExamined != 11 || a.IndexLookups != 22 || a.FullScans != 33 || a.Inserts != 44 {
		t.Fatalf("Add = %+v", a)
	}
	a.Reset()
	if a != (Counters{}) {
		t.Fatalf("Reset = %+v", a)
	}
}
