package ast

import "testing"

func TestAdornmentOf(t *testing.T) {
	q := NewAtom("t", C("paris"), V("Y"))
	if ad := AdornmentOf(q); ad != "bf" {
		t.Fatalf("adornment = %q, want bf", ad)
	}
	if ad := AdornmentOf(NewAtom("t", V("X"), V("Y"))); ad != "ff" {
		t.Fatalf("adornment = %q, want ff", ad)
	}
	ad := Adornment("bfb")
	if !ad.Bound(0) || ad.Bound(1) || !ad.Bound(2) || ad.Bound(3) {
		t.Fatalf("Bound misreports for %q", ad)
	}
	if got := ad.BoundCols(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("BoundCols = %v", got)
	}
	if ad.BoundCount() != 2 {
		t.Fatalf("BoundCount = %d", ad.BoundCount())
	}
}

func TestSkeletonizeSharesShape(t *testing.T) {
	a := Skeletonize(NewAtom("t", C("paris"), V("Y")))
	b := Skeletonize(NewAtom("t", C("lyon"), V("Z")))
	if a.Key() != b.Key() {
		t.Fatalf("same-shape queries got different keys: %q vs %q", a.Key(), b.Key())
	}
	if a.Adornment != "bf" {
		t.Fatalf("adornment = %q", a.Adornment)
	}
	if len(a.Consts) != 1 || a.Consts[0].Name != "paris" {
		t.Fatalf("slot table = %v", a.Consts)
	}
	// Repeated variables are part of the shape.
	rep := Skeletonize(NewAtom("t", V("X"), V("X")))
	dis := Skeletonize(NewAtom("t", V("X"), V("Y")))
	if rep.Key() == dis.Key() {
		t.Fatal("t(X,X) and t(X,Y) must not share a skeleton")
	}
	// Repeated constants get distinct slots.
	cc := Skeletonize(NewAtom("t", C("a"), C("a")))
	if len(cc.Consts) != 2 {
		t.Fatalf("slot table = %v, want two slots", cc.Consts)
	}
}

func TestSlotRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, 7, 42} {
		s := SlotConst(i)
		got, ok := SlotIndex(s)
		if !ok || got != i {
			t.Fatalf("SlotIndex(SlotConst(%d)) = %d, %v", i, got, ok)
		}
	}
	if _, ok := SlotIndex(C("paris")); ok {
		t.Fatal("ordinary constant mistaken for a slot")
	}
	if _, ok := SlotIndex(V("X")); ok {
		t.Fatal("variable mistaken for a slot")
	}
}

func TestBindAtomAndRule(t *testing.T) {
	skel := Skeletonize(NewAtom("t", C("paris"), V("Y")))
	bound := BindAtom(skel.Atom, []Term{C("lyon")})
	if bound.Args[0] != C("lyon") || !bound.Args[1].IsVar() {
		t.Fatalf("bound = %v", bound)
	}
	if skel.Atom.Args[0] == C("lyon") {
		t.Fatal("BindAtom mutated the skeleton")
	}
	r := Rule{
		Head: NewAtom("t", V("X"), V("Y")),
		Body: []Atom{NewAtom("a", V("X"), SlotConst(0)), NewAtom("t", SlotConst(0), V("Y"))},
	}
	br := BindRule(r, []Term{C("k")})
	if br.Body[0].Args[1] != C("k") || br.Body[1].Args[0] != C("k") {
		t.Fatalf("bound rule = %v", br)
	}
	if !r.HasSlots() || br.HasSlots() {
		t.Fatal("HasSlots wrong before/after binding")
	}
	if skel.Atom.SlotCount() != 1 {
		t.Fatalf("SlotCount = %d", skel.Atom.SlotCount())
	}
}
