package ast

import (
	"fmt"
)

// Definition is the paper's central object (Section 2): a recursion
// consisting of one linear recursive rule and one nonrecursive exit rule,
// both defining the same IDB predicate.
//
// Example (the canonical one-sided recursion, transitive closure):
//
//	t(X, Y) :- a(X, Z), t(Z, Y).
//	t(X, Y) :- b(X, Y).
type Definition struct {
	// Recursive is the linear recursive rule r_r.
	Recursive Rule
	// Exit is the nonrecursive rule r_n.
	Exit Rule
}

// Pred returns the recursively defined predicate.
func (d *Definition) Pred() string { return d.Recursive.Head.Pred }

// Arity returns the arity of the recursively defined predicate.
func (d *Definition) Arity() int { return d.Recursive.Head.Arity() }

// RecursiveAtom returns the single occurrence of the defined predicate in
// the recursive rule's body.
func (d *Definition) RecursiveAtom() Atom {
	return d.Recursive.Body[d.Recursive.RecursiveAtomIndex()]
}

// NonrecursiveBody returns the body atoms of the recursive rule other than
// the recursive atom, in order.
func (d *Definition) NonrecursiveBody() []Atom {
	idx := d.Recursive.RecursiveAtomIndex()
	out := make([]Atom, 0, len(d.Recursive.Body)-1)
	for i, a := range d.Recursive.Body {
		if i != idx {
			out = append(out, a)
		}
	}
	return out
}

// Program returns the two rules as a Program (recursive rule first).
func (d *Definition) Program() *Program {
	return NewProgram(d.Recursive.Clone(), d.Exit.Clone())
}

// Clone returns a deep copy.
func (d *Definition) Clone() *Definition {
	return &Definition{Recursive: d.Recursive.Clone(), Exit: d.Exit.Clone()}
}

// PersistentColumns reports, for each head argument position, whether the
// same variable appears in that position of the head and of the recursive
// body atom. Section 4 of the paper distinguishes selections on persistent
// columns (the constant surfaces in the exit-rule instances of the
// expansion) from selections on other columns (the constant stays on the
// initial segment).
func (d *Definition) PersistentColumns() []bool {
	head := d.Recursive.Head
	rec := d.RecursiveAtom()
	out := make([]bool, head.Arity())
	for i := range head.Args {
		out[i] = i < rec.Arity() && head.Args[i].IsVar() && head.Args[i] == rec.Args[i]
	}
	return out
}

// Validate checks that the pair of rules forms a recursion in the paper's
// class: same head predicate and arity, the recursive rule linear, the exit
// rule nonrecursive, and both heads satisfying the head restrictions.
func (d *Definition) Validate() error {
	if d.Recursive.Head.Pred != d.Exit.Head.Pred {
		return fmt.Errorf("ast: definition rules define different predicates %s and %s",
			d.Recursive.Head.Pred, d.Exit.Head.Pred)
	}
	if d.Recursive.Head.Arity() != d.Exit.Head.Arity() {
		return fmt.Errorf("ast: definition rules use arities %d and %d",
			d.Recursive.Head.Arity(), d.Exit.Head.Arity())
	}
	if !d.Recursive.IsLinearFor() {
		return fmt.Errorf("ast: recursive rule is not linear: %v", d.Recursive)
	}
	if d.Exit.BodyOccurrences(d.Exit.Head.Pred) != 0 {
		return fmt.Errorf("ast: exit rule is recursive: %v", d.Exit)
	}
	if len(d.Exit.Body) == 0 {
		return fmt.Errorf("ast: exit rule has empty body: %v", d.Exit)
	}
	if err := d.Recursive.Validate(); err != nil {
		return err
	}
	if err := d.Exit.Validate(); err != nil {
		return err
	}
	rec := d.RecursiveAtom()
	if rec.Arity() != d.Recursive.Head.Arity() {
		return fmt.Errorf("ast: recursive body atom arity %d differs from head arity %d",
			rec.Arity(), d.Recursive.Head.Arity())
	}
	return nil
}

// HasRepeatedNonrecursivePredicates reports whether some EDB (nonrecursive)
// predicate occurs more than once in the recursive rule's body. Theorems 3.3
// and 3.4 of the paper require the recursive rule to be free of repeated
// nonrecursive predicates.
func (d *Definition) HasRepeatedNonrecursivePredicates() bool {
	seen := make(map[string]int)
	for _, a := range d.NonrecursiveBody() {
		seen[a.Pred]++
		if seen[a.Pred] > 1 {
			return true
		}
	}
	return false
}

// ExtractDefinition locates the recursion for pred inside a program: exactly
// one linear recursive rule and exactly one nonrecursive rule. It returns an
// error if the program's rules for pred do not have that shape.
func ExtractDefinition(p *Program, pred string) (*Definition, error) {
	var rec, exit []Rule
	for _, r := range p.RulesFor(pred) {
		if r.IsRecursiveFor() {
			rec = append(rec, r)
		} else {
			exit = append(exit, r)
		}
	}
	if len(rec) != 1 {
		return nil, fmt.Errorf("ast: predicate %s has %d recursive rules, want 1", pred, len(rec))
	}
	if len(exit) != 1 {
		return nil, fmt.Errorf("ast: predicate %s has %d nonrecursive rules, want 1", pred, len(exit))
	}
	d := &Definition{Recursive: rec[0], Exit: exit[0]}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
