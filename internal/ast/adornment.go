package ast

import (
	"strconv"
	"strings"
)

// Adornment is the bound/free pattern of a query's argument positions:
// 'b' where the argument is a constant, 'f' where it is a variable. It
// is the standard Datalog notation (t^bf for t(paris, Y)) and the key
// the planning layer compiles against: every analysis the Theorem 3.4
// planner, the Section 5 multi-rule reduction, and the Magic Sets
// rewriting perform depends only on which columns are bound, never on
// the constant values, so one compiled skeleton per adornment serves
// every ground query of that shape.
type Adornment string

// AdornmentOf computes the adornment of a query atom: constants are
// bound, variables free.
func AdornmentOf(q Atom) Adornment {
	var b strings.Builder
	b.Grow(len(q.Args))
	for _, t := range q.Args {
		if t.IsConst() {
			b.WriteByte('b')
		} else {
			b.WriteByte('f')
		}
	}
	return Adornment(b.String())
}

// Bound reports whether column i is bound ('b').
func (ad Adornment) Bound(i int) bool { return i >= 0 && i < len(ad) && ad[i] == 'b' }

// BoundCols returns the bound column indices, ascending. The i-th entry
// is the column slot i binds.
func (ad Adornment) BoundCols() []int {
	var out []int
	for i := 0; i < len(ad); i++ {
		if ad[i] == 'b' {
			out = append(out, i)
		}
	}
	return out
}

// BoundCount returns the number of bound columns — the width of the
// slot table a skeleton of this adornment is instantiated with.
func (ad Adornment) BoundCount() int {
	n := 0
	for i := 0; i < len(ad); i++ {
		if ad[i] == 'b' {
			n++
		}
	}
	return n
}

func (ad Adornment) String() string { return string(ad) }

// slotPrefix marks placeholder constants standing for late-bound query
// constants. The NUL byte keeps slot names disjoint from anything the
// parser can produce (quoted atoms aside, which cannot contain NUL in
// practice); the "$" makes a leaked placeholder legible in error text.
const slotPrefix = "\x00$"

// SlotConst returns the placeholder constant standing for slot i of a
// plan skeleton. It behaves as an ordinary constant throughout analysis
// and compilation — bound columns are bound regardless of value — and is
// replaced by the actual query constant at Bind time.
func SlotConst(i int) Term { return C(slotPrefix + strconv.Itoa(i)) }

// SlotIndex reports whether t is a slot placeholder and, if so, which
// slot it stands for.
func SlotIndex(t Term) (int, bool) {
	if !t.IsConst() || !strings.HasPrefix(t.Name, slotPrefix) {
		return 0, false
	}
	i, err := strconv.Atoi(t.Name[len(slotPrefix):])
	if err != nil {
		return 0, false
	}
	return i, true
}

// SkeletonQuery is a ground query split into its reusable shape and its
// per-query constants: Atom is the canonical skeleton (slot placeholders
// at bound columns, variables renamed by first occurrence so repetition
// is preserved but spelling is not), and Consts is the slot table — the
// original constants in slot order. Two queries with the same skeleton
// share one compiled plan; only the slot table differs.
type SkeletonQuery struct {
	Atom      Atom
	Adornment Adornment
	Consts    []Term
}

// Key returns the cache key for the skeleton: the canonical atom's
// rendering, which coincides for t(paris, Y) and t(lyon, Z) but differs
// for t(X, X) (repeated variables change the answer predicate's
// semantics, not just its constants).
func (s SkeletonQuery) Key() string { return s.Atom.String() }

// Skeletonize canonicalizes a query: each constant becomes the next
// SlotConst, each variable the next canonical name (repeated variables
// keep one shared name). The original constants are returned as the slot
// table.
func Skeletonize(q Atom) SkeletonQuery {
	s := SkeletonQuery{Adornment: AdornmentOf(q)}
	args := make([]Term, len(q.Args))
	canon := make(map[string]Term)
	for i, t := range q.Args {
		if t.IsConst() {
			args[i] = SlotConst(len(s.Consts))
			s.Consts = append(s.Consts, t)
			continue
		}
		v, ok := canon[t.Name]
		if !ok {
			v = V("V" + strconv.Itoa(len(canon)))
			canon[t.Name] = v
		}
		args[i] = v
	}
	s.Atom = Atom{Pred: q.Pred, Args: args}
	return s
}

// BindAtom replaces every slot placeholder in the atom with its value
// from the slot table. Slots beyond len(consts) are left in place (the
// caller validates the table width).
func BindAtom(a Atom, consts []Term) Atom {
	out := a.Clone()
	for i, t := range out.Args {
		if s, ok := SlotIndex(t); ok && s < len(consts) {
			out.Args[i] = consts[s]
		}
	}
	return out
}

// BindRule is BindAtom over a rule's head and body.
func BindRule(r Rule, consts []Term) Rule {
	out := Rule{Head: BindAtom(r.Head, consts)}
	out.Body = make([]Atom, len(r.Body))
	for i, a := range r.Body {
		out.Body[i] = BindAtom(a, consts)
	}
	return out
}

// BindProgram is BindRule over every rule, returning a fresh program.
func BindProgram(p *Program, consts []Term) *Program {
	out := &Program{Rules: make([]Rule, len(p.Rules))}
	for i, r := range p.Rules {
		out.Rules[i] = BindRule(r, consts)
	}
	return out
}

// HasSlots reports whether the atom contains any slot placeholder.
func (a Atom) HasSlots() bool {
	for _, t := range a.Args {
		if _, ok := SlotIndex(t); ok {
			return true
		}
	}
	return false
}

// HasSlots reports whether the rule contains any slot placeholder.
func (r Rule) HasSlots() bool {
	if r.Head.HasSlots() {
		return true
	}
	for _, a := range r.Body {
		if a.HasSlots() {
			return true
		}
	}
	return false
}

// SlotCount returns the number of distinct slot placeholders in the
// atom (slots are numbered densely from 0 by Skeletonize).
func (a Atom) SlotCount() int {
	n := 0
	for _, t := range a.Args {
		if i, ok := SlotIndex(t); ok && i+1 > n {
			n = i + 1
		}
	}
	return n
}
