// Package ast defines the abstract syntax of function-free Horn clause
// (Datalog) programs as used throughout the reproduction of Naughton's
// "One-Sided Recursions" (PODS 1987 / JCSS 1991).
//
// The paper considers programs whose predicates split into IDB predicates
// (appearing in some rule head) and EDB predicates (defined by their extent).
// Terms are variables or constants; there are no function symbols. Rule
// heads contain no repeated variables and no constants (paper, Section 2);
// that restriction is checked by Rule.Validate and Program.Validate.
package ast

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates variables from constants.
type TermKind int

const (
	// Var is a logical variable (written with a leading upper-case letter
	// or underscore in the concrete syntax).
	Var TermKind = iota
	// Const is a constant symbol (lower-case atom, number, or quoted).
	Const
)

// Term is a variable or a constant. Terms are small value types and are
// compared with ==.
type Term struct {
	Kind TermKind
	Name string
}

// V constructs a variable term.
func V(name string) Term { return Term{Kind: Var, Name: name} }

// C constructs a constant term.
func C(name string) Term { return Term{Kind: Const, Name: name} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == Var }

// IsConst reports whether the term is a constant.
func (t Term) IsConst() bool { return t.Kind == Const }

// String renders the term in concrete syntax.
func (t Term) String() string { return t.Name }

// Atom is a predicate applied to a list of terms, e.g. t(X, Y).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom constructs an atom.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Clone returns a deep copy of the atom (Args is freshly allocated).
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Equal reports structural equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// String renders the atom in concrete syntax, e.g. "t(X, Y)".
func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Vars appends the variables of the atom to dst, in argument order, with
// duplicates preserved. Pass nil to allocate.
func (a Atom) Vars(dst []Term) []Term {
	for _, t := range a.Args {
		if t.IsVar() {
			dst = append(dst, t)
		}
	}
	return dst
}

// VarSet returns the set of variable names appearing in the atom.
func (a Atom) VarSet() map[string]bool {
	s := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar() {
			s[t.Name] = true
		}
	}
	return s
}

// Rule is a Horn clause: Head :- Body. An empty body denotes a fact.
type Rule struct {
	Head Atom
	Body []Atom
}

// NewRule constructs a rule.
func NewRule(head Atom, body ...Atom) Rule {
	return Rule{Head: head, Body: body}
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	body := make([]Atom, len(r.Body))
	for i, a := range r.Body {
		body[i] = a.Clone()
	}
	return Rule{Head: r.Head.Clone(), Body: body}
}

// IsFact reports whether the rule has an empty body and a ground head.
func (r Rule) IsFact() bool {
	if len(r.Body) != 0 {
		return false
	}
	for _, t := range r.Head.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// BodyOccurrences returns the number of body atoms whose predicate is pred.
func (r Rule) BodyOccurrences(pred string) int {
	n := 0
	for _, a := range r.Body {
		if a.Pred == pred {
			n++
		}
	}
	return n
}

// IsRecursiveFor reports whether the rule's head predicate appears in its
// body (i.e. the rule is directly recursive).
func (r Rule) IsRecursiveFor() bool { return r.BodyOccurrences(r.Head.Pred) > 0 }

// IsLinearFor reports whether the rule is linear recursive: the head
// predicate occurs exactly once in the body.
func (r Rule) IsLinearFor() bool { return r.BodyOccurrences(r.Head.Pred) == 1 }

// RecursiveAtomIndex returns the body index of the single occurrence of the
// head predicate, or -1 if the rule is not linear recursive.
func (r Rule) RecursiveAtomIndex() int {
	idx := -1
	for i, a := range r.Body {
		if a.Pred == r.Head.Pred {
			if idx >= 0 {
				return -1
			}
			idx = i
		}
	}
	return idx
}

// Vars returns the set of variable names appearing anywhere in the rule.
func (r Rule) Vars() map[string]bool {
	s := r.Head.VarSet()
	for _, a := range r.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				s[t.Name] = true
			}
		}
	}
	return s
}

// SortedVars returns the rule's variable names in sorted order, for
// deterministic iteration.
func (r Rule) SortedVars() []string {
	set := r.Vars()
	names := make([]string, 0, len(set))
	for v := range set {
		names = append(names, v)
	}
	sort.Strings(names)
	return names
}

// DistinguishedVars returns the set of variables appearing in the head.
// Variables not in the head are nondistinguished (paper, Section 2).
func (r Rule) DistinguishedVars() map[string]bool { return r.Head.VarSet() }

// Validate checks the paper's head restrictions: the head contains no
// constants and no repeated variables, and every head variable should appear
// in the body (range restriction) unless the body is empty.
func (r Rule) Validate() error {
	seen := make(map[string]bool)
	for _, t := range r.Head.Args {
		if t.IsConst() {
			return fmt.Errorf("ast: rule %v: head contains constant %s", r, t.Name)
		}
		if seen[t.Name] {
			return fmt.Errorf("ast: rule %v: head repeats variable %s", r, t.Name)
		}
		seen[t.Name] = true
	}
	if len(r.Body) == 0 {
		return nil
	}
	bodyVars := make(map[string]bool)
	for _, a := range r.Body {
		for _, t := range a.Args {
			if t.IsVar() {
				bodyVars[t.Name] = true
			}
		}
	}
	for v := range seen {
		if !bodyVars[v] {
			return fmt.Errorf("ast: rule %v: head variable %s does not appear in body", r, v)
		}
	}
	return nil
}

// String renders the rule in concrete syntax, e.g. "t(X, Y) :- a(X, Z), t(Z, Y).".
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a list of rules (facts are rules with empty bodies).
type Program struct {
	Rules []Rule
}

// NewProgram constructs a program from rules.
func NewProgram(rules ...Rule) *Program { return &Program{Rules: rules} }

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	rules := make([]Rule, len(p.Rules))
	for i, r := range p.Rules {
		rules[i] = r.Clone()
	}
	return &Program{Rules: rules}
}

// IDBPreds returns the set of predicates appearing in some rule head.
func (p *Program) IDBPreds() map[string]bool {
	s := make(map[string]bool)
	for _, r := range p.Rules {
		if len(r.Body) > 0 {
			s[r.Head.Pred] = true
		}
	}
	return s
}

// EDBPreds returns the set of predicates appearing only in rule bodies (or
// as facts), i.e. defined by their extent.
func (p *Program) EDBPreds() map[string]bool {
	idb := p.IDBPreds()
	s := make(map[string]bool)
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if !idb[a.Pred] {
				s[a.Pred] = true
			}
		}
		if len(r.Body) == 0 && !idb[r.Head.Pred] {
			s[r.Head.Pred] = true
		}
	}
	return s
}

// RulesFor returns the rules whose head predicate is pred, excluding facts.
func (p *Program) RulesFor(pred string) []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.Head.Pred == pred && len(r.Body) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// Facts returns the ground facts of the program.
func (p *Program) Facts() []Rule {
	var out []Rule
	for _, r := range p.Rules {
		if r.IsFact() {
			out = append(out, r)
		}
	}
	return out
}

// Arities returns the arity of each predicate and an error if a predicate is
// used with inconsistent arities.
func (p *Program) Arities() (map[string]int, error) {
	ar := make(map[string]int)
	check := func(a Atom) error {
		if n, ok := ar[a.Pred]; ok {
			if n != a.Arity() {
				return fmt.Errorf("ast: predicate %s used with arities %d and %d", a.Pred, n, a.Arity())
			}
			return nil
		}
		ar[a.Pred] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		if err := check(r.Head); err != nil {
			return nil, err
		}
		for _, a := range r.Body {
			if err := check(a); err != nil {
				return nil, err
			}
		}
	}
	return ar, nil
}

// Validate checks every rule and arity consistency.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if len(r.Body) == 0 {
			continue // facts may contain constants in the head
		}
		if err := r.Validate(); err != nil {
			return err
		}
	}
	_, err := p.Arities()
	return err
}

// String renders the program one rule per line.
func (p *Program) String() string {
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	return b.String()
}
