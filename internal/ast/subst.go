package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Subst is a substitution: a finite mapping from variable names to terms.
// Application is parallel (single-step): bindings are not chased
// transitively, so {X->Y, Y->a} maps X to Y, not to a. Unification
// normalizes its result to an idempotent substitution before returning it.
type Subst map[string]Term

// Lookup resolves a term under the substitution (single step).
func (s Subst) Lookup(t Term) Term {
	if t.IsVar() {
		if b, ok := s[t.Name]; ok {
			return b
		}
	}
	return t
}

// ApplyTerm applies the substitution to a single term.
func (s Subst) ApplyTerm(t Term) Term { return s.Lookup(t) }

// ApplyAtom applies the substitution to every argument of an atom, returning
// a new atom.
func (s Subst) ApplyAtom(a Atom) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Lookup(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// ApplyAtoms applies the substitution to a slice of atoms.
func (s Subst) ApplyAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = s.ApplyAtom(a)
	}
	return out
}

// ApplyRule applies the substitution to the head and body of a rule.
func (s Subst) ApplyRule(r Rule) Rule {
	return Rule{Head: s.ApplyAtom(r.Head), Body: s.ApplyAtoms(r.Body)}
}

// Bind returns a copy of s extended with v -> t. The receiver is not
// modified; substitutions are treated as persistent values by callers that
// need backtracking.
func (s Subst) Bind(v string, t Term) Subst {
	out := make(Subst, len(s)+1)
	for k, x := range s {
		out[k] = x
	}
	out[v] = t
	return out
}

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// String renders the substitution deterministically, e.g. "{X->a, Y->Z}".
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s->%s", k, s[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// RenameApart returns a copy of the rule with every variable renamed by
// appending the given suffix. The expansion procedure of Fig. 1 uses this to
// give all rule variables subscript i on iteration i.
func RenameApart(r Rule, suffix string) Rule {
	s := make(Subst)
	for v := range r.Vars() {
		s[v] = V(v + suffix)
	}
	return s.ApplyRule(r)
}
