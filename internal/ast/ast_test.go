package ast

import (
	"strings"
	"testing"
)

// tc returns the canonical one-sided recursion (paper Example 2.1):
//
//	t(X, Y) :- a(X, Z), t(Z, Y).
//	t(X, Y) :- b(X, Y).
func tc() *Definition {
	return &Definition{
		Recursive: NewRule(NewAtom("t", V("X"), V("Y")),
			NewAtom("a", V("X"), V("Z")), NewAtom("t", V("Z"), V("Y"))),
		Exit: NewRule(NewAtom("t", V("X"), V("Y")), NewAtom("b", V("X"), V("Y"))),
	}
}

func TestTermConstructors(t *testing.T) {
	if !V("X").IsVar() || V("X").IsConst() {
		t.Fatal("V should build a variable")
	}
	if !C("a").IsConst() || C("a").IsVar() {
		t.Fatal("C should build a constant")
	}
	if V("X") == C("X") {
		t.Fatal("variable and constant with same name must differ")
	}
}

func TestAtomString(t *testing.T) {
	a := NewAtom("t", V("X"), C("n0"))
	if got := a.String(); got != "t(X, n0)" {
		t.Fatalf("got %q", got)
	}
	if got := NewAtom("true").String(); got != "true" {
		t.Fatalf("got %q", got)
	}
}

func TestAtomEqualAndClone(t *testing.T) {
	a := NewAtom("p", V("X"), C("c"))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should be equal")
	}
	b.Args[0] = C("d")
	if a.Equal(b) {
		t.Fatal("mutating clone must not affect original")
	}
	if a.Equal(NewAtom("p", V("X"))) {
		t.Fatal("different arity atoms must not be equal")
	}
	if a.Equal(NewAtom("q", V("X"), C("c"))) {
		t.Fatal("different predicate atoms must not be equal")
	}
}

func TestRuleString(t *testing.T) {
	d := tc()
	want := "t(X, Y) :- a(X, Z), t(Z, Y)."
	if got := d.Recursive.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	fact := NewRule(NewAtom("a", C("x"), C("y")))
	if got := fact.String(); got != "a(x, y)." {
		t.Fatalf("got %q", got)
	}
}

func TestRuleLinearity(t *testing.T) {
	d := tc()
	if !d.Recursive.IsRecursiveFor() || !d.Recursive.IsLinearFor() {
		t.Fatal("transitive closure recursive rule should be linear recursive")
	}
	if got := d.Recursive.RecursiveAtomIndex(); got != 1 {
		t.Fatalf("recursive atom index = %d, want 1", got)
	}
	nonlinear := NewRule(NewAtom("t", V("X"), V("Y")),
		NewAtom("t", V("X"), V("Z")), NewAtom("t", V("Z"), V("Y")))
	if nonlinear.IsLinearFor() {
		t.Fatal("doubly recursive rule must not be linear")
	}
	if nonlinear.RecursiveAtomIndex() != -1 {
		t.Fatal("nonlinear rule has no single recursive atom")
	}
}

func TestRuleValidate(t *testing.T) {
	cases := []struct {
		name string
		r    Rule
		ok   bool
	}{
		{"good", tc().Recursive, true},
		{"head constant", NewRule(NewAtom("t", C("c"), V("Y")), NewAtom("b", V("Y"))), false},
		{"head repeat", NewRule(NewAtom("t", V("X"), V("X")), NewAtom("b", V("X"))), false},
		{"unsafe head var", NewRule(NewAtom("t", V("X"), V("Y")), NewAtom("b", V("X"))), false},
	}
	for _, c := range cases {
		err := c.r.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestProgramPredicateClassification(t *testing.T) {
	p := tc().Program()
	idb := p.IDBPreds()
	edb := p.EDBPreds()
	if !idb["t"] || idb["a"] || idb["b"] {
		t.Fatalf("IDB = %v", idb)
	}
	if !edb["a"] || !edb["b"] || edb["t"] {
		t.Fatalf("EDB = %v", edb)
	}
}

func TestProgramArities(t *testing.T) {
	p := tc().Program()
	ar, err := p.Arities()
	if err != nil {
		t.Fatal(err)
	}
	if ar["t"] != 2 || ar["a"] != 2 || ar["b"] != 2 {
		t.Fatalf("arities = %v", ar)
	}
	bad := NewProgram(
		NewRule(NewAtom("p", V("X")), NewAtom("q", V("X"))),
		NewRule(NewAtom("p", V("X"), V("Y")), NewAtom("q", V("X")), NewAtom("q", V("Y"))),
	)
	if _, err := bad.Arities(); err == nil {
		t.Fatal("expected arity mismatch error")
	}
}

func TestSubstApply(t *testing.T) {
	s := Subst{"X": C("a"), "Y": V("Z"), "Z": C("b")}
	if got := s.Lookup(V("X")); got != C("a") {
		t.Fatalf("X -> %v", got)
	}
	// Parallel semantics: Y -> Z (bindings are not chased).
	if got := s.Lookup(V("Y")); got != V("Z") {
		t.Fatalf("Y -> %v", got)
	}
	if got := s.Lookup(V("W")); got != V("W") {
		t.Fatalf("unbound W -> %v", got)
	}
	if got := s.Lookup(C("k")); got != C("k") {
		t.Fatalf("constant -> %v", got)
	}
	a := s.ApplyAtom(NewAtom("p", V("X"), V("Y"), V("W")))
	if a.String() != "p(a, Z, W)" {
		t.Fatalf("applied atom = %v", a)
	}
}

func TestSubstBindIsPersistent(t *testing.T) {
	s := Subst{"X": C("a")}
	s2 := s.Bind("Y", C("b"))
	if _, ok := s["Y"]; ok {
		t.Fatal("Bind must not mutate the receiver")
	}
	if s2.Lookup(V("Y")) != C("b") || s2.Lookup(V("X")) != C("a") {
		t.Fatal("Bind result missing bindings")
	}
}

func TestSubstString(t *testing.T) {
	s := Subst{"B": C("b"), "A": C("a")}
	if got := s.String(); got != "{A->a, B->b}" {
		t.Fatalf("got %q", got)
	}
}

func TestRenameApart(t *testing.T) {
	r := tc().Recursive
	r2 := RenameApart(r, "0")
	want := "t(X0, Y0) :- a(X0, Z0), t(Z0, Y0)."
	if got := r2.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	// The original is untouched.
	if !strings.Contains(r.String(), "t(X, Y)") {
		t.Fatal("RenameApart mutated its argument")
	}
}

func TestDefinitionBasics(t *testing.T) {
	d := tc()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Pred() != "t" || d.Arity() != 2 {
		t.Fatalf("pred/arity = %s/%d", d.Pred(), d.Arity())
	}
	if got := d.RecursiveAtom().String(); got != "t(Z, Y)" {
		t.Fatalf("recursive atom = %s", got)
	}
	nb := d.NonrecursiveBody()
	if len(nb) != 1 || nb[0].String() != "a(X, Z)" {
		t.Fatalf("nonrecursive body = %v", nb)
	}
}

func TestPersistentColumns(t *testing.T) {
	// In transitive closure, Y is persistent (same position head and body),
	// X is not (the body recursive atom has Z there).
	d := tc()
	pc := d.PersistentColumns()
	if pc[0] || !pc[1] {
		t.Fatalf("persistent columns = %v, want [false true]", pc)
	}
	// Same generation: sg(X, Y) :- p(X, W), p(Y, Z), sg(W, Z): neither persists.
	sg := &Definition{
		Recursive: NewRule(NewAtom("sg", V("X"), V("Y")),
			NewAtom("p", V("X"), V("W")), NewAtom("p", V("Y"), V("Z")),
			NewAtom("sg", V("W"), V("Z"))),
		Exit: NewRule(NewAtom("sg", V("X"), V("Y")), NewAtom("sg0", V("X"), V("Y"))),
	}
	pc = sg.PersistentColumns()
	if pc[0] || pc[1] {
		t.Fatalf("sg persistent columns = %v, want [false false]", pc)
	}
}

func TestDefinitionValidateRejections(t *testing.T) {
	good := tc()
	cases := []struct {
		name string
		mut  func(d *Definition)
	}{
		{"different predicate", func(d *Definition) { d.Exit.Head.Pred = "u" }},
		{"different arity", func(d *Definition) {
			d.Exit = NewRule(NewAtom("t", V("X")), NewAtom("b", V("X"), V("X")))
		}},
		{"nonlinear recursive", func(d *Definition) {
			d.Recursive.Body = append(d.Recursive.Body, NewAtom("t", V("X"), V("Z")))
		}},
		{"recursive exit", func(d *Definition) {
			d.Exit.Body = []Atom{NewAtom("t", V("X"), V("Y"))}
		}},
		{"empty exit body", func(d *Definition) { d.Exit.Body = nil }},
	}
	for _, c := range cases {
		d := good.Clone()
		c.mut(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestHasRepeatedNonrecursivePredicates(t *testing.T) {
	d := tc()
	if d.HasRepeatedNonrecursivePredicates() {
		t.Fatal("transitive closure has no repeated nonrecursive predicates")
	}
	sgRule := NewRule(NewAtom("sg", V("X"), V("Y")),
		NewAtom("p", V("X"), V("W")), NewAtom("p", V("Y"), V("Z")),
		NewAtom("sg", V("W"), V("Z")))
	sg := &Definition{Recursive: sgRule,
		Exit: NewRule(NewAtom("sg", V("X"), V("Y")), NewAtom("sg0", V("X"), V("Y")))}
	if !sg.HasRepeatedNonrecursivePredicates() {
		t.Fatal("same generation repeats p")
	}
}

func TestExtractDefinition(t *testing.T) {
	p := tc().Program()
	d, err := ExtractDefinition(p, "t")
	if err != nil {
		t.Fatal(err)
	}
	if d.Pred() != "t" {
		t.Fatalf("pred = %s", d.Pred())
	}
	if _, err := ExtractDefinition(p, "missing"); err == nil {
		t.Fatal("expected error for unknown predicate")
	}
	// Two recursive rules -> error.
	p2 := p.Clone()
	p2.Rules = append(p2.Rules, p.Rules[0].Clone())
	if _, err := ExtractDefinition(p2, "t"); err == nil {
		t.Fatal("expected error for two recursive rules")
	}
}

func TestIsFact(t *testing.T) {
	if !NewRule(NewAtom("a", C("x"), C("y"))).IsFact() {
		t.Fatal("ground head, empty body is a fact")
	}
	if NewRule(NewAtom("a", V("X"))).IsFact() {
		t.Fatal("non-ground head is not a fact")
	}
	if tc().Exit.IsFact() {
		t.Fatal("rule with body is not a fact")
	}
}

func TestProgramString(t *testing.T) {
	p := tc().Program()
	want := "t(X, Y) :- a(X, Z), t(Z, Y).\nt(X, Y) :- b(X, Y)."
	if got := p.String(); got != want {
		t.Fatalf("got %q", got)
	}
}
