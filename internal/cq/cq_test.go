package cq

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

// q parses a conjunctive query written as a rule. Head constants are
// allowed (they denote selections already applied).
func q(t *testing.T, src string) ast.Rule {
	t.Helper()
	r, err := parser.ParseRule(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return r
}

func TestContainmentIdentity(t *testing.T) {
	a := q(t, "q(X, Y) :- a(X, Z), b(Z, Y).")
	if !IsContainedIn(a, a) {
		t.Fatal("every query contains itself")
	}
	if !Equivalent(a, a) {
		t.Fatal("every query is equivalent to itself")
	}
}

func TestContainmentRenaming(t *testing.T) {
	a := q(t, "q(X, Y) :- a(X, Z), b(Z, Y).")
	b := q(t, "q(U, V) :- a(U, W), b(W, V).")
	if !Equivalent(a, b) {
		t.Fatal("alpha-renamed queries must be equivalent")
	}
}

func TestContainmentStrictSubsumption(t *testing.T) {
	// Longer path is contained in shorter pattern only when a mapping
	// exists; a(X,Z),a(Z,Y) vs a(X,Y): neither contains the other.
	long := q(t, "q(X, Y) :- a(X, Z), a(Z, Y).")
	short := q(t, "q(X, Y) :- a(X, Y).")
	if IsContainedIn(long, short) {
		t.Fatal("2-path is not contained in 1-edge")
	}
	if IsContainedIn(short, long) {
		t.Fatal("1-edge is not contained in 2-path")
	}
}

func TestContainmentWithRedundancy(t *testing.T) {
	// q2 has a redundant extra atom: equivalent to q1.
	q1 := q(t, "q(X, Y) :- a(X, Y).")
	q2 := q(t, "q(X, Y) :- a(X, Y), a(X, W).")
	if !Equivalent(q1, q2) {
		t.Fatal("redundant atom should not change the relation")
	}
}

func TestContainmentConstants(t *testing.T) {
	// Selections: q(X) :- a(X, c) vs q(X) :- a(X, Y): the first is contained
	// in the second, not vice versa.
	sel := q(t, "q(X) :- a(X, c).")
	free := q(t, "q(X) :- a(X, Y).")
	if !IsContainedIn(sel, free) {
		t.Fatal("selected query is contained in free query")
	}
	if IsContainedIn(free, sel) {
		t.Fatal("free query is not contained in selected query")
	}
}

func TestContainmentHeadConstants(t *testing.T) {
	// Heads with constants (used for strings with selections applied).
	a := q(t, "q(n0, Y) :- a(n0, Y).")
	b := q(t, "q(n0, Y) :- a(n0, Y), a(n0, W).")
	if !Equivalent(a, b) {
		t.Fatal("expected equivalence")
	}
	c := q(t, "q(n1, Y) :- a(n1, Y).")
	if IsContainedIn(a, c) || IsContainedIn(c, a) {
		t.Fatal("different head constants cannot be contained")
	}
}

func TestFindContainmentMappingWitness(t *testing.T) {
	from := q(t, "q(X, Y) :- a(X, Z), b(Z, Y).")
	to := q(t, "q(X, Y) :- a(X, W1), b(W1, Y), a(X, W2).")
	h, ok := FindContainmentMapping(from, to)
	if !ok {
		t.Fatal("expected a containment mapping")
	}
	// Verify the witness: h(from.Head) == to.Head and h(body) ⊆ to.Body.
	if got := h.ApplyAtom(from.Head); !got.Equal(to.Head) {
		t.Fatalf("head maps to %v", got)
	}
	for _, atom := range from.Body {
		mapped := h.ApplyAtom(atom)
		found := false
		for _, b := range to.Body {
			if mapped.Equal(b) {
				found = true
			}
		}
		if !found {
			t.Fatalf("mapped atom %v not in target body", mapped)
		}
	}
}

// TestPaperExpansionContainment reproduces the containment structure of the
// canonical one-sided recursion's expansion (paper Section 4): for i >= 1
// there is a containment mapping from the rightmost i-1 predicate instances
// of string i to the rightmost i-1 instances of string i-1, but the strings
// themselves are pairwise incomparable.
func TestPaperExpansionContainment(t *testing.T) {
	s1 := q(t, "t(X, Y) :- a(X, Z0), b(Z0, Y).")
	s2 := q(t, "t(X, Y) :- a(X, Z0), a(Z0, Z1), b(Z1, Y).")
	if IsContainedIn(s1, s2) || IsContainedIn(s2, s1) {
		t.Fatal("distinct TC strings must be incomparable (containment-free)")
	}
	// Rightmost suffix (dropping the leading a and freeing the left end):
	suffix1 := q(t, "s(Y) :- b(Z0, Y).")
	suffix2 := q(t, "s(Y) :- a(Z0, Z1), b(Z1, Y).")
	if !IsContainedIn(suffix2, suffix1) {
		t.Fatal("suffix of string 2 should be contained in suffix of string 1")
	}
}

func TestMinimize(t *testing.T) {
	// The cheap(Y) duplication from the paper's buys example: string 2 has
	// redundant repeated cheap atoms.
	r := q(t, "buys(X, Y) :- knows(X, W0), likes(W0, Y), cheap(Y), cheap(Y).")
	m := Minimize(r)
	if len(m.Body) != 3 {
		t.Fatalf("minimized body = %v", m.Body)
	}
	if !Equivalent(r, m) {
		t.Fatal("minimization must preserve equivalence")
	}
	// A core computation: triangle query with a duplicated edge pattern.
	r2 := q(t, "q(X) :- e(X, A), e(A, X), e(X, B), e(B, X).")
	m2 := Minimize(r2)
	if len(m2.Body) != 2 {
		t.Fatalf("expected core of size 2, got %v", m2.Body)
	}
	// Already-minimal query is unchanged.
	r3 := q(t, "q(X, Y) :- a(X, Z), a(Z, Y).")
	if got := Minimize(r3); len(got.Body) != 2 {
		t.Fatalf("minimal query shrank: %v", got)
	}
}

func TestUnionContainment(t *testing.T) {
	u1 := q(t, "t(X, Y) :- b(X, Y).")
	u2 := q(t, "t(X, Y) :- a(X, Z), b(Z, Y).")
	// b(X,Y),a(X,W) is contained in u1.
	probe := q(t, "t(X, Y) :- b(X, Y), a(X, W).")
	if !ContainedInUnion(probe, []ast.Rule{u1, u2}) {
		t.Fatal("probe should be contained in the union")
	}
	other := q(t, "t(X, Y) :- a(X, Y).")
	if ContainedInUnion(other, []ast.Rule{u1, u2}) {
		t.Fatal("a(X,Y) is not contained in the union")
	}
	if !UnionContainedInUnion([]ast.Rule{probe, u1}, []ast.Rule{u1, u2}) {
		t.Fatal("expected union containment")
	}
	if UnionContainedInUnion([]ast.Rule{probe, other}, []ast.Rule{u1, u2}) {
		t.Fatal("union with a(X,Y) is not contained")
	}
}

func TestPredicateMismatchHeads(t *testing.T) {
	a := q(t, "p(X) :- a(X).")
	b := q(t, "r(X) :- a(X).")
	if IsContainedIn(a, b) {
		t.Fatal("different head predicates are incomparable")
	}
}

// TestContainmentFreeChains checks Lemma-style containment-freeness: chains
// of distinct lengths with both endpoints distinguished are incomparable,
// for several lengths.
func TestContainmentFreeChains(t *testing.T) {
	mk := func(n int) ast.Rule {
		body := make([]ast.Atom, n)
		prev := ast.V("X")
		for i := 0; i < n; i++ {
			var next ast.Term
			if i == n-1 {
				next = ast.V("Y")
			} else {
				next = ast.V("Z" + string(rune('0'+i)))
			}
			body[i] = ast.NewAtom("a", prev, next)
			prev = next
		}
		return ast.Rule{Head: ast.NewAtom("t", ast.V("X"), ast.V("Y")), Body: body}
	}
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 4; j++ {
			got := IsContainedIn(mk(i), mk(j))
			if (i == j) != got {
				t.Fatalf("chain %d ⊑ chain %d = %v", i, j, got)
			}
		}
	}
}

// TestCyclicTargetContainment: a chain maps into a self-loop when the ends
// are free, demonstrating non-injective containment mappings.
func TestCyclicTargetContainment(t *testing.T) {
	loop := q(t, "q :- a(X, X).")
	chain := q(t, "q :- a(X, Y), a(Y, Z).")
	// chain's relation ⊇ loop's? Mapping from chain to loop: X,Y,Z -> X. So
	// loop ⊑ chain.
	if !IsContainedIn(loop, chain) {
		t.Fatal("loop should be contained in chain")
	}
	if IsContainedIn(chain, loop) {
		t.Fatal("chain is not contained in loop")
	}
}
