// Package cq implements conjunctive-query containment via containment
// mappings (paper Definition 2.1 and Lemma 2.1, after Chandra–Merlin [CM77]
// and Aho–Sagiv–Ullman [ASU79]).
//
// A conjunctive query is represented as an ast.Rule: the head lists the
// distinguished variables (and possibly constants, after selections have
// been applied), the body is the conjunction. The relation specified by a
// string s1 is contained in the relation specified by s2 if and only if
// there is a containment mapping from s2 to s1.
package cq

import (
	"sort"

	"repro/internal/ast"
)

// FindContainmentMapping searches for a containment mapping from query
// `from` to query `to`: a substitution h over from's variables such that
// h(from.Head) == to.Head argument-wise and every atom of h(from.Body)
// appears in to.Body. Constants map to themselves. It returns the mapping
// and whether one exists.
func FindContainmentMapping(from, to ast.Rule) (ast.Subst, bool) {
	if from.Head.Pred != to.Head.Pred || from.Head.Arity() != to.Head.Arity() {
		return nil, false
	}
	// Seed the mapping with the head correspondence: distinguished
	// variables map to the corresponding head terms of `to` (for strings in
	// an expansion both heads are t(V1..Vn) and the mapping fixes each Vi).
	h := make(ast.Subst)
	for i := range from.Head.Args {
		x, y := from.Head.Args[i], to.Head.Args[i]
		if x.IsConst() {
			if x != y {
				return nil, false
			}
			continue
		}
		if bound, ok := h[x.Name]; ok {
			if bound != y {
				return nil, false
			}
			continue
		}
		h[x.Name] = y
	}

	// Index target atoms by predicate for candidate generation.
	byPred := make(map[string][]ast.Atom)
	for _, a := range to.Body {
		byPred[a.Pred] = append(byPred[a.Pred], a)
	}

	// Order source atoms by ascending candidate count, then by boundness,
	// to fail fast.
	atoms := make([]ast.Atom, len(from.Body))
	copy(atoms, from.Body)
	sort.SliceStable(atoms, func(i, j int) bool {
		return len(byPred[atoms[i].Pred]) < len(byPred[atoms[j].Pred])
	})

	var search func(i int) bool
	search = func(i int) bool {
		if i == len(atoms) {
			return true
		}
		a := atoms[i]
		for _, cand := range byPred[a.Pred] {
			if len(cand.Args) != len(a.Args) {
				continue
			}
			// Try to extend h to map a onto cand; record new bindings for
			// backtracking.
			var added []string
			ok := true
			for k := range a.Args {
				x, y := a.Args[k], cand.Args[k]
				if x.IsConst() {
					if x != y {
						ok = false
						break
					}
					continue
				}
				if bound, bok := h[x.Name]; bok {
					if bound != y {
						ok = false
						break
					}
					continue
				}
				h[x.Name] = y
				added = append(added, x.Name)
			}
			if ok && search(i+1) {
				return true
			}
			for _, v := range added {
				delete(h, v)
			}
		}
		return false
	}
	if !search(0) {
		return nil, false
	}
	return h.Clone(), true
}

// IsContainedIn reports whether q1 ⊑ q2 (the relation specified by q1 is
// contained in the relation specified by q2, for all databases). By
// Lemma 2.1 this holds iff there is a containment mapping from q2 to q1.
func IsContainedIn(q1, q2 ast.Rule) bool {
	_, ok := FindContainmentMapping(q2, q1)
	return ok
}

// Equivalent reports whether two conjunctive queries specify the same
// relation on every database.
func Equivalent(q1, q2 ast.Rule) bool {
	return IsContainedIn(q1, q2) && IsContainedIn(q2, q1)
}

// Minimize returns an equivalent subquery of q with a minimal number of
// body atoms (the Chandra–Merlin core). The head is unchanged. The input is
// not modified.
func Minimize(q ast.Rule) ast.Rule {
	cur := q.Clone()
	for {
		removed := false
		for i := 0; i < len(cur.Body); i++ {
			cand := ast.Rule{Head: cur.Head, Body: without(cur.Body, i)}
			// Removing an atom can only grow the relation, so cur ⊑ cand
			// always holds; equivalence needs cand ⊑ cur.
			if IsContainedIn(cand, cur) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// without returns body with the atom at index i removed (fresh slice).
func without(body []ast.Atom, i int) []ast.Atom {
	out := make([]ast.Atom, 0, len(body)-1)
	out = append(out, body[:i]...)
	out = append(out, body[i+1:]...)
	return out
}

// ContainedInUnion reports whether conjunctive query q is contained in the
// union of the conjunctive queries us (Sagiv–Yannakakis [SY80]: for unions
// of CQs, q ⊑ ∪us iff q ⊑ u for some u in us).
func ContainedInUnion(q ast.Rule, us []ast.Rule) bool {
	for _, u := range us {
		if IsContainedIn(q, u) {
			return true
		}
	}
	return false
}

// UnionContainedInUnion reports whether ∪qs ⊑ ∪us.
func UnionContainedInUnion(qs, us []ast.Rule) bool {
	for _, q := range qs {
		if !ContainedInUnion(q, us) {
			return false
		}
	}
	return true
}
