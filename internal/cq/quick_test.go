package cq

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

// randomCQ builds a random conjunctive query over binary predicates p0..p2
// with nvars variables, the first two distinguished.
func randomCQ(rng *rand.Rand, natoms, nvars int) ast.Rule {
	vars := make([]ast.Term, nvars)
	for i := range vars {
		vars[i] = ast.V("V" + strconv.Itoa(i))
	}
	body := make([]ast.Atom, natoms)
	for i := range body {
		body[i] = ast.NewAtom("p"+strconv.Itoa(rng.Intn(3)),
			vars[rng.Intn(nvars)], vars[rng.Intn(nvars)])
	}
	// Head uses only variables that appear in the body (safety).
	used := make(map[string]bool)
	for _, a := range body {
		for _, t := range a.Args {
			used[t.Name] = true
		}
	}
	var headArgs []ast.Term
	for _, v := range vars {
		if used[v.Name] && len(headArgs) < 2 {
			headArgs = append(headArgs, v)
		}
	}
	return ast.Rule{Head: ast.Atom{Pred: "q", Args: headArgs}, Body: body}
}

// TestQuickContainmentReflexive: every random CQ is contained in itself.
func TestQuickContainmentReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(natoms, nvars uint8) bool {
		q := randomCQ(rng, 1+int(natoms)%5, 2+int(nvars)%4)
		return IsContainedIn(q, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickContainmentTransitive: containment is transitive on random
// triples (vacuously true pairs included; the interesting cases arise
// often enough at this sample size).
func TestQuickContainmentTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a := randomCQ(rng, 1+rng.Intn(4), 2+rng.Intn(3))
		b := randomCQ(rng, 1+rng.Intn(4), 2+rng.Intn(3))
		c := randomCQ(rng, 1+rng.Intn(4), 2+rng.Intn(3))
		if IsContainedIn(a, b) && IsContainedIn(b, c) && !IsContainedIn(a, c) {
			t.Fatalf("transitivity violated:\n%v\n%v\n%v", a, b, c)
		}
	}
}

// TestQuickSubsetBodyContainment: dropping body atoms can only grow the
// relation: q ⊑ q-minus-atom always.
func TestQuickSubsetBodyContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		q := randomCQ(rng, 2+rng.Intn(4), 2+rng.Intn(3))
		for drop := 0; drop < len(q.Body); drop++ {
			sub := ast.Rule{Head: q.Head, Body: without(q.Body, drop)}
			// Head safety: skip if a head variable vanished.
			safe := true
			bodyVars := make(map[string]bool)
			for _, a := range sub.Body {
				for _, tm := range a.Args {
					bodyVars[tm.Name] = true
				}
			}
			for _, tm := range q.Head.Args {
				if !bodyVars[tm.Name] {
					safe = false
				}
			}
			if !safe {
				continue
			}
			if !IsContainedIn(q, sub) {
				t.Fatalf("dropping an atom shrank the relation?\n%v\n%v", q, sub)
			}
		}
	}
}

// TestQuickMinimizeSoundAndIdempotent: minimization preserves equivalence
// and is idempotent on random CQs.
func TestQuickMinimizeSoundAndIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 150; i++ {
		q := randomCQ(rng, 1+rng.Intn(5), 2+rng.Intn(3))
		m := Minimize(q)
		if !Equivalent(q, m) {
			t.Fatalf("minimize broke equivalence:\n%v\n%v", q, m)
		}
		m2 := Minimize(m)
		if len(m2.Body) != len(m.Body) {
			t.Fatalf("minimize not idempotent:\n%v\n%v", m, m2)
		}
	}
}

// TestQuickRenamingInvariance: containment is invariant under variable
// renaming of either side.
func TestQuickRenamingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 150; i++ {
		a := randomCQ(rng, 1+rng.Intn(4), 2+rng.Intn(3))
		b := randomCQ(rng, 1+rng.Intn(4), 2+rng.Intn(3))
		s := make(ast.Subst)
		for v := range b.Vars() {
			s[v] = ast.V(v + "_renamed")
		}
		b2 := s.ApplyRule(b)
		if IsContainedIn(a, b) != IsContainedIn(a, b2) {
			t.Fatalf("renaming changed containment:\n%v\n%v", a, b)
		}
		if IsContainedIn(b, a) != IsContainedIn(b2, a) {
			t.Fatalf("renaming changed containment (reverse):\n%v\n%v", a, b)
		}
	}
}
