// Package unify implements unification of function-free atoms.
//
// Because the paper restricts rule heads to contain no repeated variables
// and no constants, unifying a rule head with a predicate instance is always
// a matching (Appendix A, footnote 1); Match implements that fast path and
// Unify the general most-general-unifier construction used in tests and in
// the generalized expansion of Appendix A.
package unify

import (
	"repro/internal/ast"
)

// Unify computes a most general unifier of two atoms, or reports failure.
// The returned substitution is idempotent over the variables it binds
// (bindings are fully resolved, so parallel application is correct).
func Unify(a, b ast.Atom) (ast.Subst, bool) {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return nil, false
	}
	s := make(ast.Subst)
	for i := range a.Args {
		if !unifyTerms(s, a.Args[i], b.Args[i]) {
			return nil, false
		}
	}
	// Normalize the triangular substitution built by unifyTerms to an
	// idempotent one: chase each binding to its final value. The binding
	// graph is acyclic (unifyTerms only binds unbound roots), so chasing
	// terminates.
	for v := range s {
		s[v] = chase(s, s[v])
	}
	return s, true
}

// chase resolves a term through the substitution transitively.
func chase(s ast.Subst, t ast.Term) ast.Term {
	for t.IsVar() {
		next, ok := s[t.Name]
		if !ok || next == t {
			return t
		}
		t = next
	}
	return t
}

// unifyTerms extends s to unify x and y, mutating s. Function-free terms
// need no occurs check.
func unifyTerms(s ast.Subst, x, y ast.Term) bool {
	x = chase(s, x)
	y = chase(s, y)
	switch {
	case x == y:
		return true
	case x.IsVar():
		s[x.Name] = y
		return true
	case y.IsVar():
		s[y.Name] = x
		return true
	default: // distinct constants
		return false
	}
}

// Match computes a one-way matching from pattern to ground-or-variable
// instance: a substitution s over pattern's variables with s(pattern) ==
// instance. Variables in instance are treated as constants (they may not be
// bound). Returns false if no such matching exists.
func Match(pattern, instance ast.Atom) (ast.Subst, bool) {
	if pattern.Pred != instance.Pred || len(pattern.Args) != len(instance.Args) {
		return nil, false
	}
	s := make(ast.Subst)
	for i := range pattern.Args {
		p, v := pattern.Args[i], instance.Args[i]
		if p.IsConst() {
			if p != v {
				return nil, false
			}
			continue
		}
		if bound, ok := s[p.Name]; ok {
			if bound != v {
				return nil, false
			}
			continue
		}
		s[p.Name] = v
	}
	return s, true
}

// MatchAtoms extends Match over parallel slices of atoms, matching each
// pattern atom against the instance atom at the same index under one shared
// substitution.
func MatchAtoms(patterns, instances []ast.Atom) (ast.Subst, bool) {
	if len(patterns) != len(instances) {
		return nil, false
	}
	s := make(ast.Subst)
	for i := range patterns {
		p, q := patterns[i], instances[i]
		if p.Pred != q.Pred || len(p.Args) != len(q.Args) {
			return nil, false
		}
		for j := range p.Args {
			x, y := p.Args[j], q.Args[j]
			if x.IsConst() {
				if x != y {
					return nil, false
				}
				continue
			}
			if bound, ok := s[x.Name]; ok {
				if bound != y {
					return nil, false
				}
				continue
			}
			s[x.Name] = y
		}
	}
	return s, true
}
