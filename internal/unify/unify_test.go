package unify

import (
	"testing"

	"repro/internal/ast"
)

func atom(pred string, args ...ast.Term) ast.Atom { return ast.NewAtom(pred, args...) }

func TestUnifySuccess(t *testing.T) {
	// t(X, Y) with t(Z, b): X->Z (or Z->X), Y->b.
	s, ok := Unify(atom("t", ast.V("X"), ast.V("Y")), atom("t", ast.V("Z"), ast.C("b")))
	if !ok {
		t.Fatal("expected unification to succeed")
	}
	a := s.ApplyAtom(atom("t", ast.V("X"), ast.V("Y")))
	b := s.ApplyAtom(atom("t", ast.V("Z"), ast.C("b")))
	if !a.Equal(b) {
		t.Fatalf("unifier does not equate: %v vs %v", a, b)
	}
}

func TestUnifyConstants(t *testing.T) {
	if _, ok := Unify(atom("p", ast.C("a")), atom("p", ast.C("b"))); ok {
		t.Fatal("distinct constants must not unify")
	}
	s, ok := Unify(atom("p", ast.C("a")), atom("p", ast.C("a")))
	if !ok || len(s) != 0 {
		t.Fatalf("identical constants should unify with empty mgu, got %v", s)
	}
}

func TestUnifyPredicateMismatch(t *testing.T) {
	if _, ok := Unify(atom("p", ast.V("X")), atom("q", ast.V("X"))); ok {
		t.Fatal("different predicates must not unify")
	}
	if _, ok := Unify(atom("p", ast.V("X")), atom("p", ast.V("X"), ast.V("Y"))); ok {
		t.Fatal("different arities must not unify")
	}
}

func TestUnifySharedVariables(t *testing.T) {
	// p(X, X) with p(a, Y): X->a, Y->a.
	s, ok := Unify(atom("p", ast.V("X"), ast.V("X")), atom("p", ast.C("a"), ast.V("Y")))
	if !ok {
		t.Fatal("expected success")
	}
	if s.Lookup(ast.V("Y")) != ast.C("a") {
		t.Fatalf("Y -> %v, want a", s.Lookup(ast.V("Y")))
	}
	// p(X, X) with p(a, b) must fail.
	if _, ok := Unify(atom("p", ast.V("X"), ast.V("X")), atom("p", ast.C("a"), ast.C("b"))); ok {
		t.Fatal("expected failure on conflicting bindings")
	}
}

func TestUnifyChains(t *testing.T) {
	// p(X, Y, Z) with p(Y, Z, a): all collapse to a.
	s, ok := Unify(atom("p", ast.V("X"), ast.V("Y"), ast.V("Z")),
		atom("p", ast.V("Y"), ast.V("Z"), ast.C("a")))
	if !ok {
		t.Fatal("expected success")
	}
	for _, v := range []string{"X", "Y", "Z"} {
		if got := s.Lookup(ast.V(v)); got != ast.C("a") {
			t.Fatalf("%s -> %v, want a", v, got)
		}
	}
}

func TestMatch(t *testing.T) {
	// Head t(X1, X2) matches instance t(U, b).
	s, ok := Match(atom("t", ast.V("X1"), ast.V("X2")), atom("t", ast.V("U"), ast.C("b")))
	if !ok {
		t.Fatal("expected match")
	}
	if s["X1"] != ast.V("U") || s["X2"] != ast.C("b") {
		t.Fatalf("match subst = %v", s)
	}
	// Repeated pattern variable requires equal instance terms.
	if _, ok := Match(atom("p", ast.V("X"), ast.V("X")), atom("p", ast.C("a"), ast.C("b"))); ok {
		t.Fatal("repeated pattern var must force equality")
	}
	s, ok = Match(atom("p", ast.V("X"), ast.V("X")), atom("p", ast.C("a"), ast.C("a")))
	if !ok || s["X"] != ast.C("a") {
		t.Fatalf("match subst = %v ok=%v", s, ok)
	}
	// Constants in the pattern must match exactly.
	if _, ok := Match(atom("p", ast.C("a")), atom("p", ast.C("b"))); ok {
		t.Fatal("constant mismatch must fail")
	}
	// A pattern constant never matches an instance variable.
	if _, ok := Match(atom("p", ast.C("a")), atom("p", ast.V("X"))); ok {
		t.Fatal("pattern constant vs instance variable must fail")
	}
}

func TestMatchAtoms(t *testing.T) {
	pats := []ast.Atom{atom("a", ast.V("X"), ast.V("Z")), atom("b", ast.V("Z"), ast.V("Y"))}
	inst := []ast.Atom{atom("a", ast.C("1"), ast.C("2")), atom("b", ast.C("2"), ast.C("3"))}
	s, ok := MatchAtoms(pats, inst)
	if !ok {
		t.Fatal("expected match")
	}
	if s["X"] != ast.C("1") || s["Z"] != ast.C("2") || s["Y"] != ast.C("3") {
		t.Fatalf("subst = %v", s)
	}
	// Shared Z with inconsistent values must fail.
	inst[1] = atom("b", ast.C("9"), ast.C("3"))
	if _, ok := MatchAtoms(pats, inst); ok {
		t.Fatal("inconsistent shared variable must fail")
	}
	if _, ok := MatchAtoms(pats, inst[:1]); ok {
		t.Fatal("length mismatch must fail")
	}
}

// TestUnifySymmetric checks that unification succeeds in both argument
// orders on a set of random-ish pairs.
func TestUnifySymmetric(t *testing.T) {
	pairs := [][2]ast.Atom{
		{atom("p", ast.V("X"), ast.C("a")), atom("p", ast.C("b"), ast.V("Y"))},
		{atom("p", ast.V("X"), ast.V("X")), atom("p", ast.V("U"), ast.V("W"))},
		{atom("p", ast.V("A"), ast.V("B"), ast.V("A")), atom("p", ast.C("1"), ast.V("Q"), ast.V("Q"))},
	}
	for _, pr := range pairs {
		_, ok1 := Unify(pr[0], pr[1])
		_, ok2 := Unify(pr[1], pr[0])
		if ok1 != ok2 {
			t.Fatalf("asymmetric unification for %v and %v", pr[0], pr[1])
		}
	}
}
