package rewrite_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/cq"
	"repro/internal/eval"
	"repro/internal/expand"
	"repro/internal/parser"
	"repro/internal/rewrite"
	"repro/internal/storage"
)

func def(t *testing.T, src, pred string) *ast.Definition {
	t.Helper()
	d, err := parser.ParseDefinition(src, pred)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

const buysSrc = `
	buys(X, Y) :- knows(X, W), buys(W, Y), cheap(Y).
	buys(X, Y) :- likes(X, Y), cheap(Y).
`

// TestExpE08RemoveRedundantBuys reproduces the paper's Section 3
// optimization: cheap(Y) is removed from the recursive rule and the result
// is one-sided.
func TestExpE08RemoveRedundantBuys(t *testing.T) {
	d := def(t, buysSrc, "buys")
	opt, removed, err := rewrite.RemoveRedundant(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0].String() != "cheap(Y)" {
		t.Fatalf("removed = %v", removed)
	}
	want := "buys(X, Y) :- knows(X, W), buys(W, Y)."
	if got := opt.Recursive.String(); got != want {
		t.Fatalf("optimized rule = %q", got)
	}
	if got := opt.Exit.String(); got != d.Exit.String() {
		t.Fatalf("exit rule changed: %q", got)
	}
	ok, err := analysis.IsOneSided(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("optimized buys should be one-sided")
	}
}

// TestRemovalPreservesRelation validates the removal semantically: the
// optimized and original definitions compute the same relation on random
// databases (standard equivalence — what [Nau89b] guarantees).
func TestRemovalPreservesRelation(t *testing.T) {
	d := def(t, buysSrc, "buys")
	opt, _, err := rewrite.RemoveRedundant(d)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 6; seed++ {
		db := randomEDB(d.Program(), 7, 20, seed)
		a, err := eval.SemiNaive(d.Program(), db)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eval.SemiNaive(opt.Program(), db)
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := a.IDB.Relation("buys"), b.IDB.Relation("buys")
		if !ra.Equal(rb) {
			t.Fatalf("seed %d: removal changed the relation:\n%s\nvs\n%s",
				seed, a.IDB.Dump(), b.IDB.Dump())
		}
	}
}

// TestRemovalPreservesExpansion cross-validates string-by-string: each
// optimized string is equivalent to the corresponding original string.
func TestRemovalPreservesExpansion(t *testing.T) {
	d := def(t, buysSrc, "buys")
	opt, _, err := rewrite.RemoveRedundant(d)
	if err != nil {
		t.Fatal(err)
	}
	origStrings := expand.Expand(d, 6)
	optStrings := expand.Expand(opt, 6)
	for i := range origStrings {
		if !cq.Equivalent(origStrings[i].Rule(), optStrings[i].Rule()) {
			t.Fatalf("string %d not equivalent:\n%v\nvs\n%v", i, origStrings[i], optStrings[i])
		}
	}
}

// TestRemovalRejectsLoadBearingAtoms: atoms that Theorem 3.3 flags but the
// invariant check cannot verify stay in place.
func TestRemovalRejectsLoadBearingAtoms(t *testing.T) {
	cases := []struct{ name, src, pred string }{
		// d(Z) is recursively redundant (acyclic component) but removal
		// would change the relation: Z would become unconstrained.
		{"example 3.4", `
			t(X, Y, Z) :- t(X, U, W), e(U, Y), d(Z).
			t(X, Y, Z) :- t0(X, Y, Z).
		`, "t"},
		// e(X, X): redundant by the graph condition, but the exit rule
		// does not establish it.
		{"self-loop filter", `
			t(X) :- e(X, X), t(X).
			t(X) :- b(X).
		`, "t"},
		// The permission atom touches a persistent column but also the
		// nonpersistent X; its component has a nondistinguished-variable
		// cycle, so it is not even a candidate.
		{"permissions", `
			t(X, Y) :- a(X, Z), t(Z, Y), p(X, Y).
			t(X, Y) :- b(X, Y).
		`, "t"},
	}
	for _, c := range cases {
		d := def(t, c.src, c.pred)
		opt, removed, err := rewrite.RemoveRedundant(d)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(removed) != 0 {
			t.Fatalf("%s: removed %v", c.name, removed)
		}
		if opt.Recursive.String() != d.Recursive.String() {
			t.Fatalf("%s: rule changed to %v", c.name, opt.Recursive)
		}
	}
}

// TestRemovalVerifiedAgainstEvaluation fuzzes the removal decision: for a
// corpus of rules, whenever rewrite.RemoveRedundant drops atoms the optimized
// definition must agree with the original on random databases.
func TestRemovalVerifiedAgainstEvaluation(t *testing.T) {
	srcs := []struct{ src, pred string }{
		{buysSrc, "buys"},
		{`t(X, Y) :- a(X, Z), t(Z, Y), q(Y), r(Y).
		  t(X, Y) :- b(X, Y), q(Y), r(Y).`, "t"}, // two removable atoms
		{`t(X, Y) :- a(X, Z), t(Z, Y), q(Y).
		  t(X, Y) :- b(X, Y).`, "t"}, // q not established by exit: kept
	}
	for _, s := range srcs {
		d := def(t, s.src, s.pred)
		opt, _, err := rewrite.RemoveRedundant(d)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 4; seed++ {
			db := randomEDB(d.Program(), 6, 15, seed)
			a, err := eval.SemiNaive(d.Program(), db)
			if err != nil {
				t.Fatal(err)
			}
			b, err := eval.SemiNaive(opt.Program(), db)
			if err != nil {
				t.Fatal(err)
			}
			if !a.IDB.Relation(s.pred).Equal(b.IDB.Relation(s.pred)) {
				t.Fatalf("%s seed %d: optimization changed the relation", s.src, seed)
			}
		}
	}
}

// TestExpE09DecideOneSided runs the complete procedure on the paper's
// corpus (Theorem 3.4 and the discussion around it).
func TestExpE09DecideOneSided(t *testing.T) {
	cases := []struct {
		name, src, pred string
		want            rewrite.Verdict
	}{
		{"transitive closure", `
			t(X, Y) :- a(X, Z), t(Z, Y).
			t(X, Y) :- b(X, Y).
		`, "t", rewrite.VerdictOneSided},
		{"buys", buysSrc, "buys", rewrite.VerdictConverted},
		{"same generation", `
			sg(X, Y) :- p(X, W), p(Y, Z), sg(W, Z).
			sg(X, Y) :- sg0(X, Y).
		`, "sg", rewrite.VerdictNotOneSided},
		{"example 3.5", `
			t(X, Y) :- e(X, W), t(Y, W).
			t(X, Y) :- t0(X, Y).
		`, "t", rewrite.VerdictNotOneSided},
		{"bounded", `
			t(X, Y) :- e(W1, W2), t(X, Y).
			t(X, Y) :- b(X, Y).
		`, "t", rewrite.VerdictBounded},
		{"example 3.4", `
			t(X, Y, Z) :- t(X, U, W), e(U, Y), d(Z).
			t(X, Y, Z) :- t0(X, Y, Z).
		`, "t", rewrite.VerdictOneSided},
		{"canonical two-sided", `
			t(X, Y) :- a(X, W), t(W, Z), c(Z, Y).
			t(X, Y) :- b(X, Y).
		`, "t", rewrite.VerdictNotOneSided},
	}
	for _, c := range cases {
		d := def(t, c.src, c.pred)
		dec, err := rewrite.DecideOneSided(d)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if dec.Verdict != c.want {
			t.Errorf("%s: verdict = %v, want %v", c.name, dec.Verdict, c.want)
		}
	}
}

// TestExpE18AppendixAConstruction builds Q from Example A.1's P and checks
// its rules.
func TestExpE18AppendixAConstruction(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X1, X2) :- c(X1), p(X1, X2).
		p(X1, X2) :- c(X1), p0(X1, X2).
	`)
	q, err := rewrite.AppendixA(p, "p", "q", "bq", "eq")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"q(X1, X2, X3) :- c(X1), q(X1, X2, X3).",
		"q(X1, X2, X3) :- c(X1), p0(X1, X2), bq(X3).",
		"q(X1, X2, X3) :- q(X1, X2, W), eq(W, X3).",
	}
	if len(q.Rules) != len(want) {
		t.Fatalf("got %d rules:\n%s", len(q.Rules), q)
	}
	for i, w := range want {
		if got := q.Rules[i].String(); got != w {
			t.Errorf("rule %d = %q, want %q", i, got, w)
		}
	}
}

// TestExpE18LemmaA1 validates Lemma A.1 empirically: with bq nonempty, the
// projection of q onto its first two columns equals p, on random EDBs.
func TestExpE18LemmaA1(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X1, X2) :- c(X1), p(X1, X2).
		p(X1, X2) :- c(X1), p0(X1, X2).
	`)
	q, err := rewrite.AppendixA(p, "p", "q", "bq", "eq")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		db := randomEDB(p, 6, 12, seed)
		db.AddFact("bq", "bconst")
		db.AddFact("eq", "bconst", "e1")
		db.AddFact("eq", "e1", "e2")

		pres, err := eval.SemiNaive(p, db)
		if err != nil {
			t.Fatal(err)
		}
		qres, err := eval.SemiNaive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		prel := pres.IDB.Relation("p")
		qrel := qres.IDB.Relation("q")
		proj := storage.NewRelation(2, nil)
		for _, tup := range qrel.Tuples() {
			proj.Insert(storage.Tuple{tup[0], tup[1]})
		}
		if !proj.Equal(prel) {
			t.Fatalf("seed %d: pi_12(q) != p:\n%s\nvs\n%s", seed, qres.IDB.Dump(), pres.IDB.Dump())
		}
	}
}

// TestExpE18LemmaA2 checks the string shapes of Lemma A.2 via the
// generalized expansion: every string has either no eq instances and a
// single bq, or a bq-terminated chain of eq instances ending at X3.
func TestExpE18LemmaA2(t *testing.T) {
	p := parser.MustParseProgram(`
		p(X1, X2) :- c(X1), p(X1, X2).
		p(X1, X2) :- c(X1), p0(X1, X2).
	`)
	q, err := rewrite.AppendixA(p, "p", "q", "bq", "eq")
	if err != nil {
		t.Fatal(err)
	}
	goal := ast.NewAtom("q", ast.V("QX1"), ast.V("QX2"), ast.V("QX3"))
	strings := expand.ProgramExpansion(q, goal, 6)
	if len(strings) < 6 {
		t.Fatalf("expected several strings, got %d", len(strings))
	}
	for _, s := range strings {
		var bqs, eqs []ast.Atom
		for _, a := range s.Body {
			switch a.Pred {
			case "bq":
				bqs = append(bqs, a)
			case "eq":
				eqs = append(eqs, a)
			}
		}
		if len(bqs) != 1 {
			t.Fatalf("string %v has %d bq instances", s, len(bqs))
		}
		if len(eqs) == 0 {
			continue
		}
		// Chain check: bq(Wk), eq(Wk, Wk-1), ..., eq(W1, X3): walk from bq.
		next := make(map[string]string) // eq maps first arg -> second arg
		for _, e := range eqs {
			next[e.Args[0].Name] = e.Args[1].Name
		}
		cur := bqs[0].Args[0].Name
		steps := 0
		for {
			n, ok := next[cur]
			if !ok {
				break
			}
			cur = n
			steps++
			if steps > len(eqs) {
				t.Fatalf("string %v: eq chain has a cycle", s)
			}
		}
		if steps != len(eqs) {
			t.Fatalf("string %v: eq instances do not form a single chain from bq", s)
		}
		if cur != s.Head.Args[2].Name {
			t.Fatalf("string %v: chain ends at %s, not the third head variable", s, cur)
		}
	}
}

// TestExpE18ExampleA3: the bounded P has a nonrecursive equivalent P', and
// Q' built from P' is one-sided — the positive direction of Theorem 3.2.
func TestExpE18ExampleA3(t *testing.T) {
	pPrime := parser.MustParseProgram(`
		p(X1, X2) :- c(X1), p0(X1, X2).
	`)
	qPrime, err := rewrite.AppendixA(pPrime, "p", "q", "bq", "eq")
	if err != nil {
		t.Fatal(err)
	}
	d, err := ast.ExtractDefinition(qPrime, "q")
	if err != nil {
		t.Fatalf("Q' should be a single recursion: %v\n%s", err, qPrime)
	}
	ok, err := analysis.IsOneSided(d)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Q' must be one-sided (Example A.3)")
	}
}

// TestExpE16CrossProductRewrite reproduces the Section 4 rewriting: the
// canonical two-sided recursion becomes superficially one-sided over ac.
func TestExpE16CrossProductRewrite(t *testing.T) {
	d := def(t, `
		t(X, Y) :- a(X, W), t(W, Z), c(Z, Y).
		t(X, Y) :- b(X, Y).
	`, "t")
	cp, err := rewrite.CrossProductRewrite(d, "ac")
	if err != nil {
		t.Fatal(err)
	}
	if got := cp.CombinedRule.String(); got != "ac(X, Y, W, Z) :- a(X, W), c(Z, Y)." {
		t.Fatalf("combined rule = %q", got)
	}
	if got := cp.Rewritten.Recursive.String(); got != "t(X, Y) :- ac(X, Y, W, Z), t(W, Z)." {
		t.Fatalf("rewritten rule = %q", got)
	}
	// Superficially one-sided: Theorem 3.1 passes on the rewritten form.
	ok, err := analysis.IsOneSided(cp.Rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("rewritten recursion should pass the Theorem 3.1 test")
	}
	// And it computes the same relation once ac is materialized.
	for seed := int64(0); seed < 4; seed++ {
		db := randomEDB(d.Program(), 6, 15, seed)
		want, err := eval.SemiNaive(d.Program(), db)
		if err != nil {
			t.Fatal(err)
		}
		full := ast.NewProgram(append([]ast.Rule{cp.CombinedRule},
			cp.Rewritten.Program().Rules...)...)
		got, err := eval.SemiNaive(full, db)
		if err != nil {
			t.Fatal(err)
		}
		if !want.IDB.Relation("t").Equal(got.IDB.Relation("t")) {
			t.Fatalf("seed %d: cross-product rewriting changed the relation", seed)
		}
	}
}

func TestCrossProductRejectsPassThrough(t *testing.T) {
	// Y appears only in head and call: the combined rule would be unsafe.
	d := def(t, `
		t(X, Y) :- a(X, W), t(W, Y).
		t(X, Y) :- b(X, Y).
	`, "t")
	if _, err := rewrite.CrossProductRewrite(d, "ac"); err == nil {
		t.Fatal("expected rejection: Y appears in no nonrecursive atom")
	}
}

func TestAppendixAErrors(t *testing.T) {
	p := parser.MustParseProgram(`p(X) :- c(X).`)
	if _, err := rewrite.AppendixA(p, "p", "q", "b", "e"); err == nil {
		t.Fatal("expected arity error")
	}
	p2 := parser.MustParseProgram(`p(X, Y) :- c(X, Y).`)
	if _, err := rewrite.AppendixA(p2, "p", "c", "b", "e"); err == nil {
		t.Fatal("expected name-clash error")
	}
}

// randomEDB fills every EDB predicate of p with random tuples.
func randomEDB(p *ast.Program, domain, facts int, seed int64) *storage.Database {
	db := storage.NewDatabase()
	arities, _ := p.Arities()
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	rng := newRand(seed)
	for pred, ar := range arities {
		if idb[pred] {
			continue
		}
		for i := 0; i < facts; i++ {
			args := make([]string, ar)
			for j := range args {
				args[j] = "d" + itoa(rng.intn(domain))
			}
			db.AddFact(pred, args...)
		}
	}
	return db
}

// Minimal deterministic PRNG to keep the test hermetic.
type xrand struct{ state uint64 }

func newRand(seed int64) *xrand { return &xrand{state: uint64(seed)*2685821657736338717 + 1} }

func (r *xrand) intn(n int) int {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return int(r.state % uint64(n))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
