package rewrite

import (
	"repro/internal/ast"
)

// ReducePersistent applies the paper's Section 4 persistent-column
// reduction to a definition for a selection binding the given columns:
// the constant for each bound column (supplied by constFor — a real
// constant for a ground query, an ast.SlotConst placeholder for an
// adornment-keyed plan skeleton) is substituted for the head variable in
// both rules, then the column is dropped from the head and the recursive
// body atom. The result is the reduced definition plus, for each
// remaining column, its original index (the re-expansion map).
//
// Every bound column must be persistent in d (same variable in that
// position of the head and the recursive call); callers split the
// adornment with analysis.SplitBinding first. The input is not modified.
func ReducePersistent(d *ast.Definition, bound []int, constFor func(col int) ast.Term) (*ast.Definition, []int) {
	drop := make(map[int]bool)
	for _, c := range bound {
		drop[c] = true
	}
	substRule := func(r ast.Rule) ast.Rule {
		s := make(ast.Subst)
		for _, c := range bound {
			if v := r.Head.Args[c]; v.IsVar() {
				s[v.Name] = constFor(c)
			}
		}
		return s.ApplyRule(r)
	}
	dropCols := func(a ast.Atom) ast.Atom {
		var args []ast.Term
		for i, t := range a.Args {
			if !drop[i] {
				args = append(args, t)
			}
		}
		return ast.Atom{Pred: a.Pred, Args: args}
	}
	rec := substRule(d.Recursive)
	exit := substRule(d.Exit)
	recIdx := d.Recursive.RecursiveAtomIndex()
	rec.Head = dropCols(rec.Head)
	rec.Body[recIdx] = dropCols(rec.Body[recIdx])
	exit.Head = dropCols(exit.Head)

	var keep []int
	for i := 0; i < d.Arity(); i++ {
		if !drop[i] {
			keep = append(keep, i)
		}
	}
	return &ast.Definition{Recursive: rec, Exit: exit}, keep
}
