// Package rewrite implements the paper's program transformations: the
// redundancy-removal optimization of [Nau89b] that Theorem 3.4's complete
// procedure requires (verified here by a persistent-column invariant
// check), the optimize-then-detect decision procedure itself, the
// Appendix A reduction used to prove Theorem 3.2, and the Agrawal et al.
// cross-product rewriting the paper critiques at the end of Section 4.
package rewrite

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/ast"
)

// RemoveRedundant removes recursively redundant atoms from the recursive
// rule for as long as each removal provably preserves the defined relation.
// Candidates come from the Theorem 3.3 graph condition; each removal is
// verified with a persistent-column invariant:
//
//	an atom q(A1, ..., Am) may be dropped from the recursive rule when
//	every Ai is a persistent head variable (the same variable in that
//	position of the head and the recursive call) and the exit rule's body
//	contains q applied to its head variables at the same positions.
//
// Then every derivation bottoms out in the exit rule, which establishes
// q over the persistent columns, and persistence carries the fact
// unchanged through each recursive level — so the dropped atom was implied.
// This is sound in general and complete for the paper's worked example
// (buys/likes/cheap); removals the check cannot verify are left in place.
//
// It returns the optimized definition and the removed atoms, in removal
// order. The input is not modified.
func RemoveRedundant(d *ast.Definition) (*ast.Definition, []ast.Atom, error) {
	cur := d.Clone()
	var removed []ast.Atom
	for {
		if err := cur.Validate(); err != nil {
			return nil, nil, err
		}
		flags, err := analysis.RedundantAtoms(cur)
		if err != nil {
			return nil, nil, err
		}
		recIdx := cur.Recursive.RecursiveAtomIndex()
		// Map NonrecursiveBody order back to body indices.
		var bodyIdx []int
		for bi := range cur.Recursive.Body {
			if bi != recIdx {
				bodyIdx = append(bodyIdx, bi)
			}
		}
		found := -1
		for i, red := range flags {
			if red && removable(cur, bodyIdx[i]) {
				found = bodyIdx[i]
				break
			}
		}
		if found < 0 {
			return cur, removed, nil
		}
		removed = append(removed, cur.Recursive.Body[found].Clone())
		body := make([]ast.Atom, 0, len(cur.Recursive.Body)-1)
		for bi, a := range cur.Recursive.Body {
			if bi != found {
				body = append(body, a)
			}
		}
		cur.Recursive.Body = body
	}
}

// removable applies the persistent-column invariant check to the body atom
// at index bi of the recursive rule.
func removable(d *ast.Definition, bi int) bool {
	atom := d.Recursive.Body[bi]
	head := d.Recursive.Head
	persistent := d.PersistentColumns()
	// Position of each head variable.
	headPos := make(map[string]int)
	for i, t := range head.Args {
		if t.IsVar() {
			headPos[t.Name] = i
		}
	}
	positions := make([]int, len(atom.Args))
	for i, t := range atom.Args {
		if !t.IsVar() {
			return false
		}
		pos, ok := headPos[t.Name]
		if !ok || !persistent[pos] {
			return false
		}
		positions[i] = pos
	}
	// The exit rule must establish the invariant: its body contains the
	// atom applied to the exit head variables at the same positions.
	exitHead := d.Exit.Head
	want := ast.Atom{Pred: atom.Pred, Args: make([]ast.Term, len(positions))}
	for i, pos := range positions {
		want.Args[i] = exitHead.Args[pos]
	}
	for _, a := range d.Exit.Body {
		if a.Equal(want) {
			return true
		}
	}
	return false
}

// Verdict is the outcome of the Theorem 3.4 decision procedure.
type Verdict int

const (
	// VerdictUnknown: the procedure's side conditions fail; no conclusion.
	VerdictUnknown Verdict = iota
	// VerdictOneSided: the definition already satisfies Theorem 3.1.
	VerdictOneSided
	// VerdictConverted: redundancy removal produced an equivalent
	// definition satisfying Theorem 3.1 (the buys case).
	VerdictConverted
	// VerdictBounded: the (optimized) definition has no unbounded
	// connected sets; it is uniformly bounded and recursion is unnecessary.
	VerdictBounded
	// VerdictNotOneSided: Theorem 3.4 applies — no one-sided definition is
	// uniformly equivalent (the same-generation and Example 3.5 cases).
	VerdictNotOneSided
)

func (v Verdict) String() string {
	switch v {
	case VerdictOneSided:
		return "one-sided"
	case VerdictConverted:
		return "one-sided after optimization"
	case VerdictBounded:
		return "uniformly bounded"
	case VerdictNotOneSided:
		return "no uniformly equivalent one-sided definition"
	}
	return "unknown"
}

// Decision is the full result of DecideOneSided.
type Decision struct {
	Verdict Verdict
	// Optimized is the definition after redundancy removal (equal to the
	// input when nothing was removed).
	Optimized *ast.Definition
	// Removed lists the atoms redundancy removal dropped.
	Removed []ast.Atom
	// Classification is the analysis of the optimized definition.
	Classification *analysis.Classification
}

// DecideOneSided runs the paper's complete procedure (Section 3, after
// Theorem 3.4): optimize with [Nau89b]-style redundancy removal, then test
// Theorem 3.1; when the optimized definition is uniformly unbounded and
// free of recursively redundant atoms, failing Theorem 3.1 is conclusive.
func DecideOneSided(d *ast.Definition) (*Decision, error) {
	opt, removed, err := RemoveRedundant(d)
	if err != nil {
		return nil, err
	}
	cls, err := analysis.Classify(opt)
	if err != nil {
		return nil, err
	}
	dec := &Decision{Optimized: opt, Removed: removed, Classification: cls}
	flags, err := analysis.RedundantAtoms(opt)
	if err != nil {
		return nil, err
	}
	anyRedundant := false
	for _, f := range flags {
		if f {
			anyRedundant = true
		}
	}
	switch {
	case cls.OneSided && len(removed) == 0:
		dec.Verdict = VerdictOneSided
	case cls.OneSided:
		dec.Verdict = VerdictConverted
	case !cls.HasUnboundedConnectedSets:
		dec.Verdict = VerdictBounded
	case !anyRedundant:
		// Uniformly unbounded (unbounded connected sets and nothing
		// redundant) and fails Theorem 3.1: Theorem 3.4 concludes.
		dec.Verdict = VerdictNotOneSided
	default:
		dec.Verdict = VerdictUnknown
	}
	return dec, nil
}

// AppendixA applies the Theorem 3.2 reduction to a program P defining a
// binary predicate pred with linear rules: it builds the program Q defining
// the ternary predicate q such that Q is equivalent to a one-sided
// recursion iff P is bounded. The returned program uses fresh predicates
// derived from bPred and ePred for the new b and e relations and qPred for
// q.
func AppendixA(p *ast.Program, pred, qPred, bPred, ePred string) (*ast.Program, error) {
	arities, err := p.Arities()
	if err != nil {
		return nil, err
	}
	if arities[pred] != 2 {
		return nil, fmt.Errorf("rewrite: Appendix A requires a binary predicate, %s has arity %d", pred, arities[pred])
	}
	for _, used := range []string{qPred, bPred, ePred} {
		if _, ok := arities[used]; ok {
			return nil, fmt.Errorf("rewrite: predicate %s already appears in P", used)
		}
	}
	out := ast.NewProgram()
	for _, r := range p.Rules {
		if r.Head.Pred != pred {
			out.Rules = append(out.Rules, r.Clone())
			continue
		}
		occ := r.BodyOccurrences(pred)
		if occ > 1 {
			return nil, fmt.Errorf("rewrite: rule %v is not linear", r)
		}
		x3 := freshVar(r, "X3")
		nr := r.Clone()
		nr.Head = ast.Atom{Pred: qPred, Args: append(append([]ast.Term{}, r.Head.Args...), ast.V(x3))}
		if occ == 1 {
			// Recursive rule: thread X3 through the recursive call.
			for i, a := range nr.Body {
				if a.Pred == pred {
					nr.Body[i] = ast.Atom{Pred: qPred, Args: append(append([]ast.Term{}, a.Args...), ast.V(x3))}
				}
			}
		} else {
			// Nonrecursive rule: guard with b(X3).
			nr.Body = append(nr.Body, ast.NewAtom(bPred, ast.V(x3)))
		}
		out.Rules = append(out.Rules, nr)
	}
	// The new recursive rule: q(X1, X2, X3) :- q(X1, X2, W), e(W, X3).
	w := "W"
	out.Rules = append(out.Rules, ast.Rule{
		Head: ast.NewAtom(qPred, ast.V("X1"), ast.V("X2"), ast.V("X3")),
		Body: []ast.Atom{
			ast.NewAtom(qPred, ast.V("X1"), ast.V("X2"), ast.V(w)),
			ast.NewAtom(ePred, ast.V(w), ast.V("X3")),
		},
	})
	return out, nil
}

// freshVar returns a variable name not used in the rule.
func freshVar(r ast.Rule, base string) string {
	used := r.Vars()
	name := base
	for i := 0; used[name]; i++ {
		name = base + "_" + strconv.Itoa(i)
	}
	return name
}

// CrossProduct is the result of the Agrawal et al. rewriting (Section 4,
// end): the recursion re-expressed over a combined predicate that is the
// cross product of the recursive rule's nonrecursive atoms.
type CrossProduct struct {
	// Rewritten is the "superficially one-sided" definition over the
	// combined predicate.
	Rewritten *ast.Definition
	// CombinedRule defines the combined predicate, e.g.
	// ac(X, Y, W, Z) :- a(X, W), c(Z, Y).
	CombinedRule ast.Rule
}

// CrossProductRewrite rewrites a linear recursion as a transitive closure
// over the cross product of its nonrecursive atoms:
//
//	t(X, Y) :- a(X, W), t(W, Z), c(Z, Y).   becomes
//	ac(X, Y, W, Z) :- a(X, W), c(Z, Y).
//	t(X, Y) :- ac(X, Y, W, Z), t(W, Z).
//
// The rewritten recursion passes the Theorem 3.1 test when ac is treated
// as an EDB relation, but evaluating it materializes the cross product —
// the Property 3 violation the paper demonstrates.
func CrossProductRewrite(d *ast.Definition, combinedPred string) (*CrossProduct, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	head := d.Recursive.Head
	rec := d.RecursiveAtom()
	nonrec := d.NonrecursiveBody()
	if len(nonrec) == 0 {
		return nil, fmt.Errorf("rewrite: recursive rule has no nonrecursive atoms")
	}
	// Combined predicate arguments: head variables then recursive-call
	// variables not already present.
	var args []ast.Term
	seen := make(map[string]bool)
	add := func(t ast.Term) {
		if t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			args = append(args, t)
		}
	}
	for _, t := range head.Args {
		add(t)
	}
	for _, t := range rec.Args {
		add(t)
	}
	combined := ast.Atom{Pred: combinedPred, Args: args}
	combinedRule := ast.Rule{Head: combined, Body: nonrec}
	// Safety: every combined-head variable must occur in some nonrecursive
	// atom; variables that do not (pure pass-through) are legal in the
	// paper's examples because they appear in the head or call only — the
	// combined rule would be unsafe. Reject those.
	bodyVars := make(map[string]bool)
	for _, a := range nonrec {
		for _, t := range a.Args {
			if t.IsVar() {
				bodyVars[t.Name] = true
			}
		}
	}
	for _, t := range args {
		if !bodyVars[t.Name] {
			return nil, fmt.Errorf("rewrite: variable %s appears in no nonrecursive atom; cross-product rewriting does not apply", t.Name)
		}
	}
	rewritten := &ast.Definition{
		Recursive: ast.Rule{
			Head: head.Clone(),
			Body: []ast.Atom{combined.Clone(), rec.Clone()},
		},
		Exit: d.Exit.Clone(),
	}
	if err := rewritten.Validate(); err != nil {
		return nil, err
	}
	return &CrossProduct{Rewritten: rewritten, CombinedRule: combinedRule}, nil
}

// SortedPreds is a helper returning the predicates of a program, sorted.
func SortedPreds(p *ast.Program) []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
		for _, a := range r.Body {
			set[a.Pred] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
