package datagen

import (
	"testing"

	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/storage"
)

func TestChain(t *testing.T) {
	db := storage.NewDatabase()
	first, last := Chain(db, "a", "n", 5)
	if first != "n0" || last != "n5" {
		t.Fatalf("first=%s last=%s", first, last)
	}
	if db.Relation("a").Len() != 5 {
		t.Fatalf("len = %d", db.Relation("a").Len())
	}
}

func TestCycle(t *testing.T) {
	db := storage.NewDatabase()
	Cycle(db, "a", "n", 4)
	if db.Relation("a").Len() != 4 {
		t.Fatalf("len = %d", db.Relation("a").Len())
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	a := storage.NewDatabase()
	b := storage.NewDatabase()
	RandomGraph(a, "e", "n", 10, 30, 7)
	RandomGraph(b, "e", "n", 10, 30, 7)
	if a.Dump() != b.Dump() {
		t.Fatal("same seed must give same graph")
	}
	c := storage.NewDatabase()
	RandomGraph(c, "e", "n", 10, 30, 8)
	if a.Dump() == c.Dump() {
		t.Fatal("different seeds should differ")
	}
}

func TestLayeredDAGIsAcyclic(t *testing.T) {
	db := storage.NewDatabase()
	first := LayeredDAG(db, "a", "L", 4, 3, 2, 1)
	if len(first) != 3 {
		t.Fatalf("first layer = %v", first)
	}
	// Counting never diverges on acyclic data.
	db.AddFact("b", "L3_0", "end")
	if _, err := eval.CountingTC(db, "a", "b", first[0], 100); err != nil {
		t.Fatalf("counting diverged on a DAG: %v", err)
	}
}

func TestChainTCAnswers(t *testing.T) {
	w := ChainTC(6)
	p := parser.MustParseProgram(`
		t(X, Y) :- a(X, Z), t(Z, Y).
		t(X, Y) :- b(X, Y).
	`)
	ans, _, err := eval.MagicEval(p, parser.MustParseAtom("t("+w.Start+", Y)"), w.DB)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Fatalf("answers = %v", eval.AnswerStrings(ans, w.DB.Syms))
	}
}

func TestGenealogySameGeneration(t *testing.T) {
	db, leafA, leafB := Genealogy(2, 3)
	p := parser.MustParseProgram(`
		sg(X, Y) :- p(X, W), p(Y, Z), sg(W, Z).
		sg(X, Y) :- sg0(X, Y).
	`)
	q := parser.MustParseAtom("sg(" + leafA + ", " + leafB + ")")
	ans, _, err := eval.MagicEval(p, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Fatalf("leaves of the same depth must be same-generation; got %v",
			eval.AnswerStrings(ans, db.Syms))
	}
	// Leaves from different families are not related.
	q2 := parser.MustParseAtom("sg(" + leafA + ", f1_7)")
	ans2, _, err := eval.MagicEval(p, q2, db)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Len() != 0 {
		t.Fatal("cross-family pairs must not be same-generation")
	}
}

func TestMarketShape(t *testing.T) {
	db := Market(3, 4, 6, 2)
	if db.Relation("knows").Len() != 12 {
		t.Fatalf("knows = %d", db.Relation("knows").Len())
	}
	if db.Relation("likes").Len() != 3 {
		t.Fatalf("likes = %d", db.Relation("likes").Len())
	}
	if db.Relation("cheap").Len() != 3 {
		t.Fatalf("cheap = %d", db.Relation("cheap").Len())
	}
}

func TestPermissionsShape(t *testing.T) {
	db := Permissions(5, 3, 0.5, 1)
	if db.Relation("a").Len() != 5 {
		t.Fatal("chain length wrong")
	}
	if db.Relation("b").Len() != 3 {
		t.Fatal("items wrong")
	}
	// Everyone can reach item0.
	p := db.Relation("p")
	v0, _ := db.Syms.Lookup("item0")
	count := 0
	for _, tup := range p.Tuples() {
		if tup[1] == v0 {
			count++
		}
	}
	if count != 6 {
		t.Fatalf("item0 permissions = %d, want 6", count)
	}
}

func TestLemma42Family(t *testing.T) {
	db := Lemma42(3)
	if db.Relation("a").Len() != 1 || db.Relation("b").Len() != 1 {
		t.Fatal("family shape wrong")
	}
	if db.Relation("c").Len() != 6 {
		t.Fatalf("c chain = %d, want 6", db.Relation("c").Len())
	}
	// The deep answer t(v1, v6) requires traversing the a self-loop; check
	// ground truth contains it.
	p := parser.MustParseProgram(`
		t(X, Y) :- a(X, W), t(W, Z), c(Z, Y).
		t(X, Y) :- b(X, Y).
	`)
	ans, _, err := eval.SelectEval(p, parser.MustParseAtom("t(v1, v6)"), db)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 1 {
		t.Fatal("t(v1, v6) must hold on the Lemma 4.2 family")
	}
}

func TestExample34Workload(t *testing.T) {
	db := Example34(5, 3, 2, 1)
	if db.Relation("e").Len() != 5 || db.Relation("d").Len() != 3 || db.Relation("t0").Len() != 2 {
		t.Fatal("workload shape wrong")
	}
}

func TestTwoSidedRandom(t *testing.T) {
	db := TwoSidedRandom(10, 20, 3)
	for _, pred := range []string{"a", "b", "c"} {
		if db.Relation(pred) == nil || db.Relation(pred).Len() == 0 {
			t.Fatalf("missing %s", pred)
		}
	}
}
