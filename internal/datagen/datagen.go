// Package datagen generates the synthetic workloads used by the
// experiment harness: graph shapes for the canonical recursion, genealogy
// forests for same generation, market-basket data for the buys recursion,
// permission graphs for Example 4.1, and the Lemma 4.2 adversarial family.
package datagen

import (
	"math/rand"
	"strconv"

	"repro/internal/storage"
)

// node formats the i-th node name with a prefix.
func node(prefix string, i int) string { return prefix + strconv.Itoa(i) }

// Chain adds an edge chain pred(p0, p1), ..., pred(p{n-1}, p{n}) to db and
// returns the first and last node names.
func Chain(db *storage.Database, pred, prefix string, n int) (first, last string) {
	for i := 0; i < n; i++ {
		db.AddFact(pred, node(prefix, i), node(prefix, i+1))
	}
	return node(prefix, 0), node(prefix, n)
}

// Cycle adds an n-cycle over pred.
func Cycle(db *storage.Database, pred, prefix string, n int) {
	for i := 0; i < n; i++ {
		db.AddFact(pred, node(prefix, i), node(prefix, (i+1)%n))
	}
}

// RandomGraph adds m random directed edges over n nodes.
func RandomGraph(db *storage.Database, pred, prefix string, n, m int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		db.AddFact(pred, node(prefix, rng.Intn(n)), node(prefix, rng.Intn(n)))
	}
}

// LayeredDAG adds a layered acyclic graph: `layers` layers of `width`
// nodes, each node having `fanout` random edges into the next layer.
// Node names are prefixL_I. It returns the names of the first layer.
func LayeredDAG(db *storage.Database, pred, prefix string, layers, width, fanout int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	name := func(l, i int) string { return prefix + strconv.Itoa(l) + "_" + strconv.Itoa(i) }
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for f := 0; f < fanout; f++ {
				db.AddFact(pred, name(l, i), name(l+1, rng.Intn(width)))
			}
		}
	}
	first := make([]string, width)
	for i := range first {
		first[i] = name(0, i)
	}
	return first
}

// TCWorkload builds a transitive-closure database: an a-graph of the given
// shape plus b-edges out of `sinks` random nodes. Returns a query start
// node guaranteed to reach at least one b-edge on chain shapes.
type TCWorkload struct {
	DB    *storage.Database
	Start string
	End   string
}

// ChainTC builds the chain workload for the canonical recursion: a-chain
// of length n, b-edge from the end.
func ChainTC(n int) TCWorkload {
	db := storage.NewDatabase()
	first, last := Chain(db, "a", "n", n)
	db.AddFact("b", last, "end")
	return TCWorkload{DB: db, Start: first, End: "end"}
}

// RandomTC builds a random-graph workload: n nodes, m a-edges, k b-edges.
func RandomTC(n, m, k int, seed int64) TCWorkload {
	db := storage.NewDatabase()
	RandomGraph(db, "a", "n", n, m, seed)
	rng := rand.New(rand.NewSource(seed + 1))
	for i := 0; i < k; i++ {
		db.AddFact("b", node("n", rng.Intn(n)), node("end", i))
	}
	return TCWorkload{DB: db, Start: node("n", 0), End: node("end", 0)}
}

// CyclicTC builds a cycle of length n with one b exit.
func CyclicTC(n int) TCWorkload {
	db := storage.NewDatabase()
	Cycle(db, "a", "n", n)
	db.AddFact("b", node("n", n/2), "end")
	return TCWorkload{DB: db, Start: node("n", 0), End: "end"}
}

// Genealogy builds a same-generation workload: a forest of `families`
// complete binary trees of the given depth, recorded as p(child, parent),
// with sg0 holding the root reflexive pairs. Returns two leaves of the
// first tree that are in the same generation.
func Genealogy(families, depth int) (*storage.Database, string, string) {
	db := storage.NewDatabase()
	var leafA, leafB string
	for f := 0; f < families; f++ {
		prefix := "f" + strconv.Itoa(f) + "_"
		// Nodes are indexed heap-style: node i has children 2i+1, 2i+2.
		total := 1<<(depth+1) - 1
		firstLeaf := 1<<depth - 1
		for i := 1; i < total; i++ {
			db.AddFact("p", node(prefix, i), node(prefix, (i-1)/2))
		}
		db.AddFact("sg0", node(prefix, 0), node(prefix, 0))
		if f == 0 {
			leafA = node(prefix, firstLeaf)
			leafB = node(prefix, total-1)
		}
	}
	return db, leafA, leafB
}

// Market builds a buys/likes/cheap workload: a knows-chain of length n per
// person cluster, likes edges at the chain ends, and a cheap item set.
func Market(people, chainLen, items int, seed int64) *storage.Database {
	rng := rand.New(rand.NewSource(seed))
	db := storage.NewDatabase()
	for p := 0; p < people; p++ {
		prefix := "p" + strconv.Itoa(p) + "_"
		_, last := Chain(db, "knows", prefix, chainLen)
		db.AddFact("likes", last, node("item", rng.Intn(items)))
	}
	for i := 0; i < items; i++ {
		if i%2 == 0 {
			db.AddFact("cheap", node("item", i))
		}
	}
	return db
}

// Permissions builds the Example 4.1 workload: an a-chain of length n,
// b-edges from the chain end to `items` sinks, and p permissions: every
// chain node may reach item0; deeper items require permissions that only
// some nodes hold (density controls how many).
func Permissions(n, items int, density float64, seed int64) *storage.Database {
	rng := rand.New(rand.NewSource(seed))
	db := storage.NewDatabase()
	_, last := Chain(db, "a", "n", n)
	for i := 0; i < items; i++ {
		db.AddFact("b", last, node("item", i))
	}
	for i := 0; i <= n; i++ {
		db.AddFact("p", node("n", i), "item0")
		for j := 1; j < items; j++ {
			if rng.Float64() < density {
				db.AddFact("p", node("n", i), node("item", j))
			}
		}
	}
	return db
}

// Lemma42 builds the adversarial family from Lemma 4.2 for the canonical
// two-sided recursion: a = {(v1, v1)}, b = {(v1, v0)}, and c the chain
// v0 -> v1 -> ... -> v2k. In the only proof that t(v1, v2k) holds, v1
// appears 2k times in the first column of a.
func Lemma42(k int) *storage.Database {
	db := storage.NewDatabase()
	db.AddFact("a", "v1", "v1")
	db.AddFact("b", "v1", "v0")
	for i := 0; i < 2*k; i++ {
		db.AddFact("c", node("v", i), node("v", i+1))
	}
	return db
}

// TwoSidedRandom builds a random workload for the canonical two-sided
// recursion: a and c random graphs over disjoint node pools bridged by b.
func TwoSidedRandom(n, m int, seed int64) *storage.Database {
	db := storage.NewDatabase()
	RandomGraph(db, "a", "l", n, m, seed)
	RandomGraph(db, "c", "r", n, m, seed+1)
	rng := rand.New(rand.NewSource(seed + 2))
	for i := 0; i < n/2; i++ {
		db.AddFact("b", node("l", rng.Intn(n)), node("r", rng.Intn(n)))
	}
	return db
}

// Example34 builds a workload for Example 3.4: an e-chain, a d set, and
// t0 exit tuples.
func Example34(chainLen, dSize, exits int, seed int64) *storage.Database {
	rng := rand.New(rand.NewSource(seed))
	db := storage.NewDatabase()
	for i := 0; i < chainLen; i++ {
		db.AddFact("e", node("u", i+1), node("u", i))
	}
	for i := 0; i < dSize; i++ {
		db.AddFact("d", node("z", i))
	}
	for i := 0; i < exits; i++ {
		db.AddFact("t0", node("x", i), node("u", rng.Intn(chainLen+1)), node("w", i))
	}
	return db
}
