package replica

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	onesided "repro"
)

// waitForGoroutines polls until the goroutine count drops back to (or
// below) want — the same tolerance as the engine's stream leak tests:
// the runtime keeps service goroutines, so equality is too strict.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines stuck at %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEngineCloseStopsTailGoroutine is the regression for the follower
// lifetime bind: Engine.Close on a follower mid-tail must stop the
// apply goroutine through the OnClose hook — whether the goroutine is
// blocked in a long-poll, sleeping in a retry backoff, or actively
// applying — never leak it. Many cycles at different phases, goroutine
// count back to baseline every time.
func TestEngineCloseStopsTailGoroutine(t *testing.T) {
	primary, ts := newPrimary(t)
	for i := 0; i < 50; i++ {
		primary.AddFact("edge", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	baseline := runtime.NumGoroutine()

	for round := 0; round < 10; round++ {
		eng, err := onesided.Open()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Start(FollowerConfig{
			Engine:       eng,
			Primary:      ts.URL,
			Dir:          t.TempDir(),
			PollInterval: 500 * time.Millisecond, // long-poll: Close must interrupt it
			RetryBackoff: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Vary the phase the tail goroutine is in when Close lands:
		// bootstrap, mid-apply, idle long-poll.
		time.Sleep(time.Duration(round%3) * 10 * time.Millisecond)
		// Only Engine.Close — the OnClose hook must reach the follower.
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
		waitForGoroutines(t, baseline)
	}
}

// TestFollowerCloseIsIdempotentWithEngineClose closes both sides in
// both orders; neither order may hang, double-stop, or leak.
func TestFollowerCloseIsIdempotentWithEngineClose(t *testing.T) {
	primary, ts := newPrimary(t)
	primary.AddFact("p", "x")
	baseline := runtime.NumGoroutine()

	for round := 0; round < 4; round++ {
		eng, err := onesided.Open()
		if err != nil {
			t.Fatal(err)
		}
		f, err := Start(FollowerConfig{
			Engine:       eng,
			Primary:      ts.URL,
			Dir:          t.TempDir(),
			PollInterval: 50 * time.Millisecond,
			RetryBackoff: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if round%2 == 0 {
			f.Close()
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
		waitForGoroutines(t, baseline)
	}
}
