package replica

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/wal"
)

// newPrimary opens a persistent engine and serves its log over a test
// HTTP server.
func newPrimary(t testing.TB) (*onesided.Engine, *httptest.Server) {
	t.Helper()
	eng, err := onesided.Open(onesided.WithPersistence(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	mux := http.NewServeMux()
	mux.Handle("/v1/repl/", NewSource(eng.Log(), eng.DB()))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return eng, ts
}

// startFollower starts a follower over the given mirror dir with fast
// test timings.
func startFollower(t testing.TB, primary, dir string) (*onesided.Engine, *Follower) {
	t.Helper()
	eng, err := onesided.Open()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Start(FollowerConfig{
		Engine:       eng,
		Primary:      primary,
		Dir:          dir,
		PollInterval: 50 * time.Millisecond,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng, f
}

// waitConverged polls until the follower's Dump matches the primary's.
func waitConverged(t testing.TB, primary, follower *onesided.Engine, f *Follower) {
	t.Helper()
	want := primary.DB().Dump()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if follower.DB().Dump() == want {
			return
		}
		if err := f.Err(); err != nil {
			t.Fatalf("follower failed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never converged (stats %+v)\nfollower:\n%s\nprimary:\n%s",
		f.Stats(), follower.DB().Dump(), primary.DB().Dump())
}

func TestFollowerConvergesLive(t *testing.T) {
	primary, ts := newPrimary(t)
	// Pre-follower history: some in the checkpoint chain, some in the
	// live tail.
	for i := 0; i < 20; i++ {
		primary.AddFact("edge", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	primary.Load("path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).")
	primary.AddFact("edge", "tail", "fact")

	feng, f := startFollower(t, ts.URL, t.TempDir())
	waitConverged(t, primary, feng, f)

	// Epoch invariant: same log position, same epoch.
	if pe, fe := primary.DB().Epoch(), feng.DB().Epoch(); pe != fe {
		t.Fatalf("epochs diverge: primary %d, follower %d", pe, fe)
	}

	// Live tail: new facts flow through without restarting anything.
	primary.AddFact("edge", "live1", "live2")
	primary.AddFact("edge", "live2", "live3")
	waitConverged(t, primary, feng, f)

	// The replicated program answers queries identically.
	prows, err := primary.Query(context.Background(), "path(n0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	frows, err := feng.Query(context.Background(), "path(n0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	ps, fs := prows.Strings(), frows.Strings()
	if len(ps) == 0 || len(ps) != len(fs) {
		t.Fatalf("answer counts: primary %d, follower %d", len(ps), len(fs))
	}
	for i := range ps {
		if ps[i] != fs[i] {
			t.Fatalf("answer %d: %q vs %q", i, ps[i], fs[i])
		}
	}

	// Follower rejects direct writes.
	if _, err := feng.InsertFact("edge", "x", "y"); err != onesided.ErrReadOnly {
		t.Fatalf("InsertFact on follower = %v, want ErrReadOnly", err)
	}

	st := f.Stats()
	if st.State != "tailing" || st.RecordsApplied == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFollowerRestartResumesFromMirror(t *testing.T) {
	primary, ts := newPrimary(t)
	for i := 0; i < 10; i++ {
		primary.AddFact("p", fmt.Sprintf("a%d", i))
	}
	mirror := t.TempDir()
	feng, f := startFollower(t, ts.URL, mirror)
	waitConverged(t, primary, feng, f)
	before := f.Stats().RecordsApplied
	f.Close()
	feng.Close()

	// More primary history while the follower is down.
	for i := 0; i < 10; i++ {
		primary.AddFact("p", fmt.Sprintf("b%d", i))
	}

	feng2, f2 := startFollower(t, ts.URL, mirror)
	waitConverged(t, primary, feng2, f2)
	if pe, fe := primary.DB().Epoch(), feng2.DB().Epoch(); pe != fe {
		t.Fatalf("epochs diverge after restart: %d vs %d", pe, fe)
	}
	// The restart recovered the prefix locally: it must not have
	// re-applied the records the mirror already held.
	if again := f2.Stats().RecordsApplied; before > 0 && again >= before+20 {
		t.Fatalf("restart re-applied the stream: %d records after, %d before", again, before)
	}
}

func TestFollowerSurvivesPrimaryCheckpointPrune(t *testing.T) {
	primary, ts := newPrimary(t)
	feng, f := startFollower(t, ts.URL, t.TempDir())
	primary.AddFact("p", "one")
	waitConverged(t, primary, feng, f)

	// Checkpoint twice so the follower's cursor segment is pruned.
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	primary.AddFact("p", "two")
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	primary.AddFact("p", "three")
	waitConverged(t, primary, feng, f)
	if pe, fe := primary.DB().Epoch(), feng.DB().Epoch(); pe != fe {
		t.Fatalf("epochs diverge after prune resync: %d vs %d", pe, fe)
	}
}

func TestPromoteTurnsMirrorIntoLog(t *testing.T) {
	primary, ts := newPrimary(t)
	for i := 0; i < 5; i++ {
		primary.AddFact("edge", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	primary.Load("t(X, Y) :- edge(X, Y).")
	mirror := t.TempDir()
	feng, f := startFollower(t, ts.URL, mirror)
	waitConverged(t, primary, feng, f)
	want := primary.DB().Dump()

	if err := f.Promote(wal.SyncBatch); err != nil {
		t.Fatal(err)
	}
	if feng.ReadOnly() {
		t.Fatal("promoted engine still read-only")
	}
	if feng.Log() == nil {
		t.Fatal("promoted engine has no log")
	}
	// Writes work and are journaled.
	if _, err := feng.InsertFact("edge", "new", "fact"); err != nil {
		t.Fatal(err)
	}
	after := feng.DB().Dump()
	if err := feng.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart over the mirror recovers the full promoted history:
	// the pre-promotion replicated state plus the post-promotion write.
	reng, err := onesided.Open(onesided.WithPersistence(mirror))
	if err != nil {
		t.Fatal(err)
	}
	defer reng.Close()
	if got := reng.DB().Dump(); got != after {
		t.Fatalf("restart after promote:\n%s\nwant:\n%s", got, after)
	}
	if want == after {
		t.Fatal("post-promotion write did not change the dump")
	}
}
