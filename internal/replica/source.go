package replica

import (
	"encoding/json"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Stream response headers. Every /v1/repl/segments response carries the
// authoritative read outcome in headers so a follower can interpret the
// body bytes without a second round trip.
const (
	// HdrSeq echoes the segment sequence served.
	HdrSeq = "X-Repl-Seq"
	// HdrOffset is the byte offset the body starts at. A follower
	// compares it against the offset it asked for and trims overlap —
	// the duplicated-delivery defense.
	HdrOffset = "X-Repl-Offset"
	// HdrSize is the segment's size at read time. When HdrSealed is 1
	// this is the segment's final size.
	HdrSize = "X-Repl-Size"
	// HdrSealed is "1" when the segment is sealed (computed after the
	// read: sealed + offset at size means advance to the successor).
	HdrSealed = "X-Repl-Sealed"
	// HdrEpoch is the primary's database epoch, for lag accounting.
	HdrEpoch = "X-Repl-Epoch"
	// HdrActive is the primary's active segment sequence.
	HdrActive = "X-Repl-Active"
)

// longPollTick is how often a waiting segment read re-checks for bytes.
const longPollTick = 25 * time.Millisecond

// maxWait bounds a single long-poll request.
const maxWait = 30 * time.Second

// defaultFetchMax bounds a segment response body when the client does
// not say.
const defaultFetchMax = 1 << 20

// Source serves a primary's write-ahead log as a replication stream:
//
//	GET /v1/repl/manifest                          → Manifest (JSON)
//	GET /v1/repl/snapshots?seq=N                   → raw snapshot file
//	GET /v1/repl/segments?seq=N&offset=M[&max=K][&wait_ms=T]
//	                                               → segment bytes from M
//
// A segment request with wait_ms long-polls: when no bytes are
// available at M and the segment is unsealed, the response is held
// until bytes appear, the segment seals, or the wait expires (200 with
// an empty body — the headers still report size/sealed/epoch).
type Source struct {
	log *wal.Log
	db  *storage.Database
	mux *http.ServeMux
}

// NewSource builds a Source over a primary's log and database.
func NewSource(log *wal.Log, db *storage.Database) *Source {
	s := &Source{log: log, db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/repl/manifest", s.handleManifest)
	s.mux.HandleFunc("GET /v1/repl/snapshots", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/repl/segments", s.handleSegment)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Source) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Manifest builds the current replication advertisement.
func (s *Source) Manifest() (Manifest, error) {
	head, chain := s.log.SnapshotChain()
	segs, err := s.log.Segments()
	if err != nil {
		return Manifest{}, err
	}
	return Manifest{
		HeadSnapshot: head,
		Chain:        chain,
		Segments:     segs,
		ActiveSeq:    s.log.ActiveSeq(),
		Epoch:        s.db.Epoch(),
	}, nil
}

func (s *Source) handleManifest(w http.ResponseWriter, r *http.Request) {
	m, err := s.Manifest()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m)
}

func (s *Source) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	seq, err := strconv.ParseUint(r.URL.Query().Get("seq"), 10, 64)
	if err != nil {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	data, err := s.log.ReadSnapshotRaw(seq)
	if err != nil {
		if os.IsNotExist(err) {
			http.Error(w, "no such snapshot", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

func (s *Source) handleSegment(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		http.Error(w, "bad seq", http.StatusBadRequest)
		return
	}
	offset, err := strconv.ParseInt(q.Get("offset"), 10, 64)
	if err != nil || offset < 0 {
		http.Error(w, "bad offset", http.StatusBadRequest)
		return
	}
	max := defaultFetchMax
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		if n < max {
			max = n
		}
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			http.Error(w, "bad wait_ms", http.StatusBadRequest)
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > maxWait {
			wait = maxWait
		}
	}

	deadline := time.Now().Add(wait)
	for {
		data, size, sealed, err := s.log.ReadSegmentAt(seq, offset, max)
		if err != nil {
			if os.IsNotExist(err) {
				http.Error(w, "no such segment", http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// Hold an empty response only while the segment can still grow.
		if len(data) == 0 && !sealed && time.Now().Before(deadline) {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(longPollTick):
				continue
			}
		}
		h := w.Header()
		h.Set("Content-Type", "application/octet-stream")
		h.Set(HdrSeq, strconv.FormatUint(seq, 10))
		h.Set(HdrOffset, strconv.FormatInt(offset, 10))
		h.Set(HdrSize, strconv.FormatInt(size, 10))
		if sealed {
			h.Set(HdrSealed, "1")
		} else {
			h.Set(HdrSealed, "0")
		}
		h.Set(HdrEpoch, strconv.FormatUint(s.db.Epoch(), 10))
		h.Set(HdrActive, strconv.FormatUint(s.log.ActiveSeq(), 10))
		w.Write(data)
		return
	}
}
