package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro"
	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/wal"
)

// FollowerConfig configures Start.
type FollowerConfig struct {
	// Engine is the read-serving engine the stream is applied into. It
	// must be opened WITHOUT persistence — the follower's mirror is its
	// durable state, attached only at promotion. Start flips it
	// read-only.
	Engine *onesided.Engine
	// Primary is the primary's base URL, e.g. "http://127.0.0.1:7070".
	Primary string
	// Dir is the local mirror directory: verified stream bytes are
	// written here under the wal's own file names, so a restart
	// recovers locally and Promote turns the mirror into the log.
	Dir string
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// PollInterval is the long-poll wait per tail fetch (default 1s).
	PollInterval time.Duration
	// RetryBackoff is the pause after a transport error or a corrupt
	// fetch before retrying (default 200ms).
	RetryBackoff time.Duration
	// MaxCorruptRetries bounds consecutive verification failures before
	// the follower fails with ErrCorrupt (default 5).
	MaxCorruptRetries int
	// FetchMax bounds the bytes requested per segment fetch (default
	// 1MiB).
	FetchMax int
}

// Follower replicates a primary into a local engine. All stream state
// is owned by one tail goroutine; Stats and Close may be called from
// anywhere.
type Follower struct {
	cfg    FollowerConfig
	eng    *onesided.Engine
	client *http.Client
	ap     *wal.Applier

	ctx       context.Context
	cancel    context.CancelFunc
	done      chan struct{}
	closeOnce sync.Once

	mu           sync.Mutex
	state        State
	err          error
	cursor       Cursor
	primaryEpoch uint64
	sizeSeq      uint64 // segment the last reported primary size is for
	size         int64  // that segment's size on the primary
	records      int64
	snapshots    int64
	retries      int64
	corrupt      int64

	mirror    *os.File // current segment's mirror file (tail goroutine only)
	mirrorSeq uint64
}

// terminalErr marks an error that must stop the follower instead of
// being retried as stream corruption (local mirror I/O failures).
type terminalErr struct{ error }

func (t terminalErr) Unwrap() error { return t.error }

// Start begins replication: the engine is flipped read-only, any
// existing mirror state in cfg.Dir is recovered into it (resuming the
// cursor at the recovered byte boundary), and a background goroutine
// bootstraps from the primary's checkpoint chain and tails its live
// segments. The goroutine's lifetime is bound to the engine: Close on
// either stops it.
func Start(cfg FollowerConfig) (*Follower, error) {
	if cfg.Engine == nil || cfg.Primary == "" || cfg.Dir == "" {
		return nil, fmt.Errorf("replica: Engine, Primary, and Dir are required")
	}
	if cfg.Engine.Log() != nil {
		return nil, fmt.Errorf("replica: follower engine must not have its own persistence")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 200 * time.Millisecond
	}
	if cfg.MaxCorruptRetries <= 0 {
		cfg.MaxCorruptRetries = 5
	}
	if cfg.FetchMax <= 0 {
		cfg.FetchMax = defaultFetchMax
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	f := &Follower{cfg: cfg, eng: cfg.Engine, client: cfg.Client, state: StateBootstrapping}
	cb := f.replayCallbacks()
	f.ap = wal.NewApplier(cb)
	cfg.Engine.SetReadOnly(true)

	// Recover a previous run's mirror: replays straight into the engine
	// and — by routing the Sym callback through the Applier — seeds the
	// applier's Value translation so tailed records resolve identically.
	res, err := wal.Recover(cfg.Dir, wal.Replay{
		Sym:     f.ap.ApplySym,
		Rel:     cb.Rel,
		Fact:    cb.Fact,
		Retract: cb.Retract,
		Rule:    cb.Rule,
		Shape:   cb.Shape,
	})
	if err != nil {
		return nil, fmt.Errorf("replica: mirror recovery: %w", err)
	}
	switch {
	case res.LastSeq != 0:
		f.cursor = Cursor{Seq: res.LastSeq, Offset: res.LastSize}
	case res.SnapshotSeq != 0:
		f.cursor = Cursor{Seq: res.SnapshotSeq + 1}
	}

	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.done = make(chan struct{})
	cfg.Engine.OnClose(f.Close)
	go f.run()
	return f, nil
}

// replayCallbacks wires stream records into the engine: facts and
// symbols straight into the database (read-only gates only client
// writes), rules through LoadProgram (which invalidates plan and result
// caches, and journals nothing while the engine has no log), and
// shapes through Prepare to keep the plan cache warm.
func (f *Follower) replayCallbacks() wal.Replay {
	db := f.eng.DB()
	return wal.Replay{
		Sym: func(name string) { db.Syms.Intern(name) },
		Rel: func(pred string, arity int) { db.Ensure(pred, arity) },
		Fact: func(pred string, consts []string) {
			db.AddFact(pred, consts...)
		},
		Retract: func(pred string, consts []string) {
			db.RemoveFact(pred, consts...)
		},
		Rule: func(src string) {
			r, err := parser.ParseRule(src)
			if err != nil {
				return // primary-journaled rules always parse
			}
			prog := ast.NewProgram()
			prog.Rules = append(prog.Rules, r)
			f.eng.LoadProgram(prog)
		},
		Shape: func(q string) {
			if a, err := parser.ParseAtom(q); err == nil {
				f.eng.Prepare(nil, a) //nolint:errcheck — warming only
			}
		},
	}
}

// run is the tail goroutine: bootstrap (unless the mirror resumed a
// cursor), then tail until closed or failed.
func (f *Follower) run() {
	defer close(f.done)
	defer f.closeMirror()
	if f.curSnapshot().Seq == 0 {
		if err := f.bootstrap(); err != nil {
			f.finish(err)
			return
		}
	}
	f.setState(StateTailing)
	f.finish(f.tailLoop())
}

// finish records the loop's exit: nil (or context cancellation) means a
// clean Close; anything else latches StateFailed.
func (f *Follower) finish(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil || errors.Is(err, ErrClosed) || errors.Is(err, context.Canceled) {
		if f.state != StateFailed {
			f.state = StateClosed
		}
		return
	}
	f.state = StateFailed
	f.err = err
}

// bootstrap fetches the primary's manifest, applies its checkpoint
// chain, and positions the cursor at the lowest live segment.
func (f *Follower) bootstrap() error {
	m, err := f.fetchManifestRetry()
	if err != nil {
		return err
	}
	if err := f.applyChain(m); err != nil {
		return err
	}
	f.setCursor(f.firstLiveCursor(m))
	return nil
}

// firstLiveCursor picks the lowest live segment above the manifest's
// snapshot head.
func (f *Follower) firstLiveCursor(m Manifest) Cursor {
	next := m.ActiveSeq
	for _, s := range m.Segments {
		if s.Seq > m.HeadSnapshot && s.Seq < next {
			next = s.Seq
		}
	}
	return Cursor{Seq: next}
}

// applyChain fetches, verifies, applies, and mirrors the manifest's
// snapshot chain. Applying is idempotent — inserts are set operations
// and the symbol translation dedups — so a resync over partially
// applied state is safe.
func (f *Follower) applyChain(m Manifest) error {
	if m.HeadSnapshot == 0 {
		return nil
	}
	raws := make(map[uint64][]byte, len(m.Chain))
	snaps := make(map[uint64]*wal.Snapshot, len(m.Chain))
	load := func(seq uint64) (*wal.Snapshot, error) {
		if s, ok := snaps[seq]; ok {
			return s, nil
		}
		raw, err := f.fetchSnapshotRetry(seq)
		if err != nil {
			return nil, err
		}
		fileSeq, s, err := wal.DecodeSnapshotBytes(raw)
		if err != nil || fileSeq != seq {
			return nil, fmt.Errorf("%w: snapshot %d: %v", ErrCorrupt, seq, err)
		}
		raws[seq], snaps[seq] = raw, s
		return s, nil
	}
	head, err := load(m.HeadSnapshot)
	if err != nil {
		return err
	}
	for _, seq := range m.Chain {
		if _, err := load(seq); err != nil {
			return err
		}
	}
	if err := f.ap.ApplySnapshot(m.HeadSnapshot, head, load); err != nil {
		return fmt.Errorf("%w: chain %d: %v", ErrCorrupt, m.HeadSnapshot, err)
	}
	// Mirror only after the whole chain verified and applied.
	for seq, raw := range raws {
		if err := f.mirrorSnapshot(seq, raw); err != nil {
			return terminalErr{err}
		}
	}
	f.mu.Lock()
	f.snapshots += int64(len(raws))
	if m.Epoch > f.primaryEpoch {
		f.primaryEpoch = m.Epoch
	}
	f.mu.Unlock()
	return nil
}

// tailLoop applies live segment bytes until closed or a terminal error.
func (f *Follower) tailLoop() error {
	cur := f.curSnapshot()
	var buf []byte // fetched but not yet applied (incomplete record tail)
	corruptRuns := 0

	corruptRetry := func(cause error) error {
		corruptRuns++
		f.mu.Lock()
		f.corrupt++
		f.mu.Unlock()
		buf = nil
		if corruptRuns > f.cfg.MaxCorruptRetries {
			return fmt.Errorf("%w: segment %d offset %d: %v", ErrCorrupt, cur.Seq, cur.Offset, cause)
		}
		return nil
	}

	for {
		if f.ctx.Err() != nil {
			return ErrClosed
		}
		r, err := f.fetchSegment(cur.Seq, cur.Offset+int64(len(buf)))
		if err != nil {
			f.noteRetry()
			if !f.sleep(f.cfg.RetryBackoff) {
				return ErrClosed
			}
			continue
		}
		if r.notFound {
			// The segment was pruned under us: a checkpoint advanced
			// past the cursor. Resync from the manifest's new chain.
			next, err := f.resync(cur)
			if err != nil {
				return err
			}
			cur, buf, corruptRuns = next, nil, 0
			continue
		}
		f.noteResponse(cur.Seq, r)

		// Duplicate-delivery defense: trim any overlap with bytes we
		// already hold; a gap (served offset beyond the request) can
		// only come from a damaged path.
		req := cur.Offset + int64(len(buf))
		data := r.data
		switch {
		case r.offset < req:
			over := req - r.offset
			if int64(len(data)) <= over {
				data = nil
			} else {
				data = data[over:]
			}
		case r.offset > req:
			if err := corruptRetry(fmt.Errorf("response offset %d beyond request %d", r.offset, req)); err != nil {
				return err
			}
			if !f.sleep(f.cfg.RetryBackoff) {
				return ErrClosed
			}
			continue
		}
		buf = append(buf, data...)

		next, rest, progress, cerr := f.consume(cur, buf)
		cur, buf = next, rest
		if progress {
			corruptRuns = 0
		}
		if cerr != nil {
			var term terminalErr
			if errors.As(cerr, &term) {
				return cerr
			}
			if err := corruptRetry(cerr); err != nil {
				return err
			}
			if !f.sleep(f.cfg.RetryBackoff) {
				return ErrClosed
			}
			continue
		}

		if r.sealed {
			// The size in a sealed response is final: being past it
			// means the primary lost history we already applied.
			if cur.Offset > r.size {
				return fmt.Errorf("%w: applied %d bytes of sealed segment %d of size %d",
					ErrDiverged, cur.Offset, cur.Seq, r.size)
			}
			if end := cur.Offset + int64(len(buf)); end > r.size {
				buf = buf[:r.size-cur.Offset] // stale over-read; refetch will confirm
			}
			if cur.Offset == r.size {
				if len(buf) > 0 {
					// A sealed segment ends on a record boundary; a
					// leftover tail cannot complete.
					if err := corruptRetry(fmt.Errorf("unparseable tail at sealed end")); err != nil {
						return err
					}
					continue
				}
				if err := f.finishSegment(); err != nil {
					return terminalErr{err}
				}
				f.syncCheckpoints()
				cur = Cursor{Seq: cur.Seq + 1}
				f.setCursor(cur)
				corruptRuns = 0
			}
		}
	}
}

// consume applies whole verified records (and, at offset 0, the segment
// header) off buf, mirroring each applied byte range, and commits the
// cursor after each record. Verification failures return plain errors
// (retryable); mirror I/O failures return terminalErr.
func (f *Follower) consume(cur Cursor, buf []byte) (Cursor, []byte, bool, error) {
	progress := false
	if cur.Offset == 0 {
		if len(buf) < wal.SegmentHeaderSize {
			return cur, buf, progress, nil
		}
		if err := wal.CheckSegmentHeader(buf, cur.Seq); err != nil {
			return cur, buf, progress, err
		}
		if err := f.mirrorWrite(cur.Seq, 0, buf[:wal.SegmentHeaderSize]); err != nil {
			return cur, buf, progress, terminalErr{err}
		}
		cur.Offset = int64(wal.SegmentHeaderSize)
		buf = buf[wal.SegmentHeaderSize:]
		progress = true
		f.setCursor(cur)
	}
	for len(buf) > 0 {
		payload, n, err := wal.SplitRecord(buf)
		if errors.Is(err, wal.ErrShortRecord) {
			break
		}
		if err != nil {
			return cur, buf, progress, err
		}
		if err := f.ap.ApplyRecord(payload); err != nil {
			return cur, buf, progress, err
		}
		if err := f.mirrorWrite(cur.Seq, cur.Offset, buf[:n]); err != nil {
			return cur, buf, progress, terminalErr{err}
		}
		cur.Offset += int64(n)
		buf = buf[n:]
		progress = true
		f.mu.Lock()
		f.records++
		f.cursor = cur
		f.mu.Unlock()
	}
	return cur, buf, progress, nil
}

// resync handles a pruned cursor segment: refetch the manifest, apply
// the (idempotent) new chain, prune the local mirror to match, and
// resume at the lowest live segment.
func (f *Follower) resync(cur Cursor) (Cursor, error) {
	m, err := f.fetchManifestRetry()
	if err != nil {
		return cur, err
	}
	if m.HeadSnapshot < cur.Seq {
		// The segment is gone but no checkpoint covers it: the primary
		// lost it (or was replaced). Nothing to resume from.
		return cur, fmt.Errorf("%w: segment %d missing, snapshot head is %d",
			ErrDiverged, cur.Seq, m.HeadSnapshot)
	}
	if err := f.applyChain(m); err != nil {
		return cur, err
	}
	f.closeMirror()
	f.pruneMirror(m)
	next := f.firstLiveCursor(m)
	f.setCursor(next)
	return next, nil
}

// syncCheckpoints mirrors any new checkpoint chain after a segment
// boundary and prunes the local mirror. Best effort: the stream itself
// does not depend on it, it only bounds restart/bootstrap cost.
func (f *Follower) syncCheckpoints() {
	m, err := f.fetchManifest()
	if err != nil || m.HeadSnapshot == 0 {
		return
	}
	have := true
	for _, seq := range m.Chain {
		if _, err := os.Stat(filepath.Join(f.cfg.Dir, wal.SnapshotFileName(seq))); err != nil {
			have = false
			break
		}
	}
	if !have {
		for _, seq := range m.Chain {
			raw, err := f.fetchSnapshot(seq)
			if err != nil {
				return
			}
			if fileSeq, _, derr := wal.DecodeSnapshotBytes(raw); derr != nil || fileSeq != seq {
				return
			}
			if err := f.mirrorSnapshot(seq, raw); err != nil {
				return
			}
		}
	}
	f.pruneMirror(m)
}

// pruneMirror deletes mirrored segments at or below the manifest head
// (and below the cursor — never a segment still being applied) and
// mirrored snapshots outside the chain.
func (f *Follower) pruneMirror(m Manifest) {
	limit := m.HeadSnapshot
	if cur := f.curSnapshot(); cur.Seq > 0 && cur.Seq <= limit {
		limit = cur.Seq - 1
	}
	chain := make(map[uint64]bool, len(m.Chain))
	for _, s := range m.Chain {
		chain[s] = true
	}
	entries, err := os.ReadDir(f.cfg.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var stale bool
		if seq, ok := parseName(e.Name(), "seg-", ".wal"); ok && seq <= limit {
			stale = true
		}
		if seq, ok := parseName(e.Name(), "snap-", ".snap"); ok && seq <= m.HeadSnapshot && !chain[seq] {
			stale = true
		}
		if stale {
			os.Remove(filepath.Join(f.cfg.Dir, e.Name()))
		}
	}
}

// parseName extracts the sequence from a wal file name.
func parseName(name, prefix, suffix string) (uint64, bool) {
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// ---------------------------------------------------------------------------
// Mirror I/O (tail goroutine only).

func (f *Follower) mirrorWrite(seq uint64, off int64, b []byte) error {
	if f.mirror == nil || f.mirrorSeq != seq {
		f.closeMirror()
		fh, err := os.OpenFile(filepath.Join(f.cfg.Dir, wal.SegmentFileName(seq)), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		f.mirror, f.mirrorSeq = fh, seq
	}
	_, err := f.mirror.WriteAt(b, off)
	return err
}

// finishSegment makes a completed segment durable before advancing.
func (f *Follower) finishSegment() error {
	if f.mirror == nil {
		return nil
	}
	if err := f.mirror.Sync(); err != nil {
		return err
	}
	f.closeMirror()
	return nil
}

func (f *Follower) closeMirror() {
	if f.mirror != nil {
		f.mirror.Close()
		f.mirror = nil
	}
}

// mirrorSnapshot writes a verified snapshot image atomically
// (temp+rename); an existing file for seq is kept — snapshots are
// immutable per sequence.
func (f *Follower) mirrorSnapshot(seq uint64, raw []byte) error {
	path := filepath.Join(f.cfg.Dir, wal.SnapshotFileName(seq))
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	tmp, err := os.CreateTemp(f.cfg.Dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ---------------------------------------------------------------------------
// HTTP client side.

type segResponse struct {
	notFound bool
	data     []byte
	offset   int64
	size     int64
	sealed   bool
	epoch    uint64
}

func (f *Follower) get(path string, q url.Values) (*http.Response, error) {
	u := f.cfg.Primary + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	return f.client.Do(req)
}

func (f *Follower) fetchManifest() (Manifest, error) {
	resp, err := f.get("/v1/repl/manifest", nil)
	if err != nil {
		return Manifest{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return Manifest{}, fmt.Errorf("replica: manifest: HTTP %d", resp.StatusCode)
	}
	var m Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// fetchManifestRetry retries transport failures until the follower is
// closed.
func (f *Follower) fetchManifestRetry() (Manifest, error) {
	for {
		m, err := f.fetchManifest()
		if err == nil {
			return m, nil
		}
		f.noteRetry()
		if !f.sleep(f.cfg.RetryBackoff) {
			return Manifest{}, ErrClosed
		}
	}
}

func (f *Follower) fetchSnapshot(seq uint64) ([]byte, error) {
	resp, err := f.get("/v1/repl/snapshots", url.Values{"seq": {strconv.FormatUint(seq, 10)}})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("replica: snapshot %d: HTTP %d", seq, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func (f *Follower) fetchSnapshotRetry(seq uint64) ([]byte, error) {
	for {
		raw, err := f.fetchSnapshot(seq)
		if err == nil {
			return raw, nil
		}
		f.noteRetry()
		if !f.sleep(f.cfg.RetryBackoff) {
			return nil, ErrClosed
		}
	}
}

func (f *Follower) fetchSegment(seq uint64, offset int64) (segResponse, error) {
	q := url.Values{
		"seq":     {strconv.FormatUint(seq, 10)},
		"offset":  {strconv.FormatInt(offset, 10)},
		"max":     {strconv.Itoa(f.cfg.FetchMax)},
		"wait_ms": {strconv.FormatInt(f.cfg.PollInterval.Milliseconds(), 10)},
	}
	resp, err := f.get("/v1/repl/segments", q)
	if err != nil {
		return segResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return segResponse{notFound: true}, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return segResponse{}, fmt.Errorf("replica: segment %d: HTTP %d", seq, resp.StatusCode)
	}
	var r segResponse
	h := resp.Header
	if r.offset, err = strconv.ParseInt(h.Get(HdrOffset), 10, 64); err != nil {
		return segResponse{}, fmt.Errorf("replica: segment %d: bad %s", seq, HdrOffset)
	}
	if r.size, err = strconv.ParseInt(h.Get(HdrSize), 10, 64); err != nil {
		return segResponse{}, fmt.Errorf("replica: segment %d: bad %s", seq, HdrSize)
	}
	r.sealed = h.Get(HdrSealed) == "1"
	r.epoch, _ = strconv.ParseUint(h.Get(HdrEpoch), 10, 64)
	// A connection dropped mid-body surfaces here as a read error; the
	// caller retries from its committed offset.
	if r.data, err = io.ReadAll(resp.Body); err != nil {
		return segResponse{}, err
	}
	return r, nil
}

// ---------------------------------------------------------------------------
// Shared state.

func (f *Follower) curSnapshot() Cursor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cursor
}

func (f *Follower) setCursor(c Cursor) {
	f.mu.Lock()
	f.cursor = c
	f.mu.Unlock()
}

func (f *Follower) setState(s State) {
	f.mu.Lock()
	f.state = s
	f.mu.Unlock()
}

func (f *Follower) noteRetry() {
	f.mu.Lock()
	f.retries++
	f.mu.Unlock()
}

// noteResponse folds a segment response's primary-side telemetry in.
func (f *Follower) noteResponse(seq uint64, r segResponse) {
	f.mu.Lock()
	if r.epoch > f.primaryEpoch {
		f.primaryEpoch = r.epoch
	}
	f.sizeSeq, f.size = seq, r.size
	f.mu.Unlock()
}

// sleep waits d or until the follower is closed (returns false).
func (f *Follower) sleep(d time.Duration) bool {
	select {
	case <-f.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// Stats reports the follower's replication position and lag.
func (f *Follower) Stats() Stats {
	applied := f.eng.DB().Epoch()
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Stats{
		State:            f.state.String(),
		Cursor:           f.cursor,
		AppliedEpoch:     applied,
		PrimaryEpoch:     f.primaryEpoch,
		RecordsApplied:   f.records,
		SnapshotsApplied: f.snapshots,
		Retries:          f.retries,
		CorruptRetries:   f.corrupt,
	}
	if f.primaryEpoch > applied {
		s.LagEpochs = f.primaryEpoch - applied
	}
	if f.sizeSeq == f.cursor.Seq && f.size > f.cursor.Offset {
		s.LagBytes = f.size - f.cursor.Offset
	}
	if f.err != nil {
		s.Err = f.err.Error()
	}
	return s
}

// Err returns the terminal error when the follower failed.
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// Close stops the tail goroutine and waits for it. Idempotent; also
// invoked by Engine.Close through the OnClose hook, so closing either
// side never leaves an applier running.
func (f *Follower) Close() error {
	f.closeOnce.Do(func() {
		f.cancel()
		<-f.done
		f.mu.Lock()
		if f.state != StateFailed && f.state != StatePromoted {
			f.state = StateClosed
		}
		f.mu.Unlock()
	})
	return nil
}

// Promote stops replication and turns the follower into a primary: the
// local mirror — which wal recovery validates, selecting the newest
// resolvable checkpoint chain exactly as a crash restart would — is
// attached as the engine's write-ahead log, and the engine starts
// accepting writes. A follower whose stream failed cannot be promoted.
func (f *Follower) Promote(policy wal.SyncPolicy) error {
	f.Close()
	f.mu.Lock()
	if f.state == StatePromoted {
		f.mu.Unlock()
		return nil
	}
	if f.state == StateFailed {
		err := f.err
		f.mu.Unlock()
		return fmt.Errorf("replica: cannot promote failed follower: %w", err)
	}
	f.mu.Unlock()
	if err := f.eng.AttachPersistence(f.cfg.Dir, policy); err != nil {
		return err
	}
	f.eng.SetReadOnly(false)
	f.setState(StatePromoted)
	return nil
}
