package chaostest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	onesided "repro"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// postFact writes one fact over HTTP and reports the status code.
func postFact(t *testing.T, client *http.Client, base, pred, k, v string) int {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"facts": []map[string]any{{"pred": pred, "args": []string{k, v}}},
	})
	resp, err := client.Post(base+"/v1/facts", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0 // transport failure: not acknowledged
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// queryCount runs one query over HTTP and returns (answers, status).
func queryCount(t *testing.T, client *http.Client, base, q string) (int, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": q})
	resp, err := client.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var r struct {
		Count int `json:"count"`
	}
	json.NewDecoder(resp.Body).Decode(&r)
	return r.Count, resp.StatusCode
}

// TestFailoverPromoteServesAllAcknowledgedFacts is the failover drill:
// a primary takes writes under concurrent follower read load, the
// primary is killed, the follower is promoted over its mirror, and the
// promoted node must (a) serve every fact the dead primary ever
// acknowledged, (b) accept new writes, and (c) produce zero 5xx
// throughout the post-promotion load. The kill happens after the
// follower has drained the primary's log — the asynchronous-replication
// window is the documented durability boundary, not a test subject.
func TestFailoverPromoteServesAllAcknowledgedFacts(t *testing.T) {
	// Primary: persistent engine + full server with the repl mount.
	peng, err := onesided.Open(onesided.WithPersistence(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	psrv, err := server.New(server.Config{
		Engine: peng,
		Repl:   replica.NewSource(peng.Log(), peng.DB()),
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(psrv)

	// Follower: read-only engine + server tailing the primary.
	feng, err := onesided.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { feng.Close() })
	f, err := replica.Start(replica.FollowerConfig{
		Engine:       feng,
		Primary:      pts.URL,
		Dir:          t.TempDir(),
		PollInterval: 50 * time.Millisecond,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsrv, err := server.New(server.Config{
		Engine:      feng,
		PrimaryURL:  pts.URL,
		Replication: f.Stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fsrv)
	t.Cleanup(fts.Close)

	client := &http.Client{Timeout: 10 * time.Second}
	if _, err := peng.Load("acked_t(X, Y) :- acked(X, Y)."); err != nil {
		t.Fatal(err)
	}

	// Load phase: writers fill the primary while readers hammer the
	// follower; every 200 on /v1/facts is an acknowledged fact.
	const writers, perWriter = 4, 100
	var ackMu sync.Mutex
	acked := make([]string, 0, writers*perWriter)
	var reader5xx atomic.Int64
	stopReads := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopReads:
					return
				default:
				}
				if _, code := queryCount(t, client, fts.URL, "acked_t(X, Y)"); code >= 500 {
					reader5xx.Add(1)
				}
			}
		}()
	}
	var wwg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wwg.Add(1)
		go func(wid int) {
			defer wwg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d_%d", wid, i)
				if postFact(t, client, pts.URL, "acked", k, "v") == http.StatusOK {
					ackMu.Lock()
					acked = append(acked, k)
					ackMu.Unlock()
				}
			}
		}(wid)
	}
	wwg.Wait()

	// Drain: wait until the follower holds everything acknowledged.
	deadline := time.Now().Add(15 * time.Second)
	for feng.DB().Epoch() < peng.DB().Epoch() {
		if err := f.Err(); err != nil {
			t.Fatalf("follower failed during load: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never drained: %+v", f.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary: connections die, the process is gone.
	pts.CloseClientConnections()
	pts.Close()
	if err := peng.Close(); err != nil {
		t.Fatal(err)
	}

	// Promote the follower over its mirror.
	if err := f.Promote(wal.SyncBatch); err != nil {
		t.Fatalf("promote: %v", err)
	}
	close(stopReads)
	rwg.Wait()
	if n := reader5xx.Load(); n > 0 {
		t.Fatalf("follower reads saw %d 5xx during the load phase", n)
	}

	// The promoted node serves every acknowledged fact...
	ackMu.Lock()
	defer ackMu.Unlock()
	if len(acked) != writers*perWriter {
		t.Fatalf("only %d/%d writes acknowledged", len(acked), writers*perWriter)
	}
	var post5xx int
	for _, k := range acked {
		n, code := queryCount(t, client, fts.URL, fmt.Sprintf("acked_t(%s, Y)", k))
		if code >= 500 {
			post5xx++
		}
		if n != 1 {
			t.Fatalf("acknowledged fact %s lost after failover (count %d, status %d)", k, n, code)
		}
	}
	// ...and takes new writes itself (the 421 gate lifted with the role).
	if code := postFact(t, client, fts.URL, "acked", "post_failover", "v"); code != http.StatusOK {
		t.Fatalf("promoted node rejected a write: %d", code)
	}
	if n, code := queryCount(t, client, fts.URL, "acked_t(post_failover, Y)"); n != 1 || code != http.StatusOK {
		t.Fatalf("post-failover write not served: count %d, status %d", n, code)
	}
	if post5xx > 0 {
		t.Fatalf("%d 5xx responses against the promoted node", post5xx)
	}

	// Stats now report the new role.
	resp, err := client.Get(fts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Role        string `json:"role"`
		Replication *struct {
			State string `json:"state"`
		} `json:"replication"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "primary" {
		t.Fatalf("promoted role = %q, want primary", st.Role)
	}
	if st.Replication == nil || st.Replication.State != "promoted" {
		t.Fatalf("replication block = %+v, want state promoted", st.Replication)
	}
}
