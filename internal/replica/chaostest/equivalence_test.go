package chaostest

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	onesided "repro"
	"repro/internal/datagen"
	"repro/internal/replica"
	"repro/internal/storage"
)

// eqFact is one ingestible fact of an equivalence workload.
type eqFact struct {
	pred string
	args []string
}

// program is one of the five example programs, predicates prefixed so
// all five coexist in a single replicated engine.
type program struct {
	name    string
	rules   string
	facts   []eqFact
	queries []string
}

// dumpDB enumerates a datagen-built database as prefixed facts.
func dumpDB(db *storage.Database, prefix string, out []eqFact) []eqFact {
	for _, pred := range db.Preds() {
		rel := db.Relation(pred)
		for _, tu := range rel.Tuples() {
			args := make([]string, len(tu))
			for i, v := range tu {
				args[i] = db.Syms.Name(v)
			}
			out = append(out, eqFact{pred: prefix + pred, args: args})
		}
	}
	return out
}

// buildPrograms assembles scaled-down versions of the five loadgen
// workloads: quickstart (chain TC), flights (graph reachability),
// genealogy (same-generation), marketbasket (buys/likes/cheap), and
// appendix A's bounded recursion.
func buildPrograms() []program {
	qs := program{
		name:    "quickstart",
		rules:   "qs_t(X, Y) :- qs_a(X, Z), qs_t(Z, Y).\nqs_t(X, Y) :- qs_b(X, Y).",
		queries: []string{"qs_t(qn0, Y)", "qs_t(qn30, Y)"},
	}
	{
		db := storage.NewDatabase()
		_, last := datagen.Chain(db, "a", "qn", 60)
		qs.facts = dumpDB(db, "qs_", nil)
		qs.facts = append(qs.facts, eqFact{pred: "qs_b", args: []string{last, "qend"}})
	}

	fl := program{
		name:    "flights",
		rules:   "fl_reach(X, Y) :- fl_flight(X, Z), fl_reach(Z, Y).\nfl_reach(X, Y) :- fl_ferry(X, Y).",
		queries: []string{"fl_reach(apt0, Y)", "fl_reach(apt7, Y)"},
	}
	{
		db := storage.NewDatabase()
		datagen.RandomGraph(db, "flight", "apt", 80, 240, 7)
		fl.facts = dumpDB(db, "fl_", nil)
		for i := 0; i < 8; i++ {
			fl.facts = append(fl.facts, eqFact{pred: "fl_ferry",
				args: []string{fmt.Sprintf("apt%d", i*10), fmt.Sprintf("island%d", i%3)}})
		}
	}

	gdb, leafA, leafB := datagen.Genealogy(3, 5)
	ge := program{
		name:  "genealogy",
		rules: "ge_sg(X, Y) :- ge_p(X, W), ge_p(Y, Z), ge_sg(W, Z).\nge_sg(X, Y) :- ge_sg0(X, Y).",
		facts: dumpDB(gdb, "ge_", nil),
		queries: []string{
			fmt.Sprintf("ge_sg(%s, Y)", leafA),
			fmt.Sprintf("ge_sg(%s, %s)", leafA, leafB),
		},
	}

	mb := program{
		name:    "marketbasket",
		rules:   "mb_buys(X, Y) :- mb_knows(X, W), mb_buys(W, Y), mb_cheap(Y).\nmb_buys(X, Y) :- mb_likes(X, Y), mb_cheap(Y).",
		facts:   dumpDB(datagen.Market(15, 4, 10, 3), "mb_", nil),
		queries: []string{"mb_buys(p3_0, Y)", "mb_buys(p7_0, Y)"},
	}

	ax := program{
		name:    "appendixa",
		rules:   "ax_p(X1, X2) :- ax_c(X1), ax_p(X1, X2).\nax_p(X1, X2) :- ax_c(X1), ax_p0(X1, X2).",
		queries: []string{"ax_p(u0, Y)", "ax_p(u11, Y)"},
	}
	for i := 0; i < 20; i++ {
		ax.facts = append(ax.facts,
			eqFact{pred: "ax_c", args: []string{fmt.Sprintf("u%d", i)}},
			eqFact{pred: "ax_p0", args: []string{fmt.Sprintf("u%d", i), fmt.Sprintf("v%d", i)}})
	}

	return []program{qs, fl, ge, mb, ax}
}

// answers evaluates a query and returns its sorted rows.
func answers(t *testing.T, eng *onesided.Engine, q string) []string {
	t.Helper()
	rows, err := eng.Query(context.Background(), q)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	return rows.Strings()
}

// compareAnswers requires both engines to answer q identically.
func compareAnswers(t *testing.T, primary, follower *onesided.Engine, q string) {
	t.Helper()
	ps, fs := answers(t, primary, q), answers(t, follower, q)
	if len(ps) != len(fs) {
		t.Fatalf("%s: primary %d answers, follower %d", q, len(ps), len(fs))
	}
	for i := range ps {
		if ps[i] != fs[i] {
			t.Fatalf("%s answer %d: primary %q, follower %q", q, i, ps[i], fs[i])
		}
	}
}

// TestRandomizedEquivalence is the end-to-end oracle for the epoch
// invariant: all five example programs stream through replication while
// the follower is restarted at random points (recovering from its
// mirror each time), the primary checkpoints at random points (forcing
// chain resyncs), and at random quiesce points both engines must give
// identical answers at the matching epoch. The final state must be
// byte-identical.
func TestRandomizedEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runEquivalence(t, seed)
		})
	}
}

func runEquivalence(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	peng, err := onesided.Open(onesided.WithPersistence(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peng.Close() })
	mux := http.NewServeMux()
	mux.Handle("/v1/repl/", replica.NewSource(peng.Log(), peng.DB()))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	mirror := t.TempDir()
	feng, f := startFollower(t, ts.URL, mirror)

	progs := buildPrograms()
	for _, pr := range progs {
		if _, err := peng.Load(pr.rules); err != nil {
			t.Fatalf("%s rules: %v", pr.name, err)
		}
	}

	// catchUp waits until the (quiesced) follower reaches the primary's
	// epoch exactly.
	catchUp := func() {
		t.Helper()
		want := peng.DB().Epoch()
		deadline := time.Now().Add(15 * time.Second)
		for feng.DB().Epoch() < want {
			if err := f.Err(); err != nil {
				t.Fatalf("follower failed: %v", err)
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower stuck at epoch %d, want %d (stats %+v)",
					feng.DB().Epoch(), want, f.Stats())
			}
			time.Sleep(2 * time.Millisecond)
		}
		if got := feng.DB().Epoch(); got != want {
			t.Fatalf("follower overshot: epoch %d, want %d", got, want)
		}
	}

	restarts, barriers := 0, 0
	remaining := make([][]eqFact, len(progs))
	total := 0
	for i, pr := range progs {
		remaining[i] = pr.facts
		total += len(pr.facts)
	}
	for total > 0 {
		// Pick a program that still has facts and push a random chunk.
		i := rng.Intn(len(progs))
		for len(remaining[i]) == 0 {
			i = (i + 1) % len(progs)
		}
		n := min(rng.Intn(15)+1, len(remaining[i]))
		for _, fa := range remaining[i][:n] {
			if _, err := peng.InsertFact(fa.pred, fa.args...); err != nil {
				t.Fatal(err)
			}
		}
		remaining[i] = remaining[i][n:]
		total -= n

		switch {
		case rng.Float64() < 0.10:
			if err := peng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		case rng.Float64() < 0.15:
			// Kill the follower mid-apply and restart it over the mirror.
			f.Close()
			feng.Close()
			feng, f = startFollower(t, ts.URL, mirror)
			restarts++
		case rng.Float64() < 0.20:
			// Matching-epoch barrier: writes are quiesced (this loop is
			// the only writer), so both engines must answer identically.
			catchUp()
			pr := progs[rng.Intn(len(progs))]
			compareAnswers(t, peng, feng, pr.queries[rng.Intn(len(pr.queries))])
			barriers++
		}
	}

	catchUp()
	if want, got := peng.DB().Dump(), feng.DB().Dump(); want != got {
		t.Fatalf("final dumps differ after %d restarts\nprimary:\n%s\nfollower:\n%s",
			restarts, want, got)
	}
	for _, pr := range progs {
		for _, q := range pr.queries {
			compareAnswers(t, peng, feng, q)
		}
	}
	t.Logf("seed %d: %d facts, %d restarts, %d mid-run barriers, final epoch %d",
		seed, peng.DB().Epoch(), restarts, barriers, peng.DB().Epoch())
}
