// Package chaostest is the fault-injection harness for the replication
// stream: a reverse proxy that sits between a follower and its primary
// and damages /v1/repl/segments traffic in the ways real networks and
// disks do — torn final records, flipped bytes, duplicated deliveries,
// connections dropped mid-record. The contract under test is the
// follower's: every fault either resumes cleanly (the follower
// re-verifies and converges byte-identically) or fails typed; a wrong
// answer is never served.
package chaostest

import (
	"io"
	"net/http"
	"strconv"
	"sync"
)

// Fault is one kind of injected damage.
type Fault int

const (
	// None passes traffic through untouched.
	None Fault = iota
	// Truncate drops the final byte of a segment response body: the
	// follower receives a torn final record and must wait for the rest.
	Truncate
	// FlipByte inverts the final byte of a segment response body: the
	// record CRC must catch it and the follower must refetch.
	FlipByte
	// Rewind rewrites the follower's requested offset downward so the
	// response overlaps bytes already applied: duplicated delivery.
	Rewind
	// Disconnect advertises the full body but aborts the connection
	// halfway through it: a mid-record transport failure.
	Disconnect
)

// String names the fault for test output.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Truncate:
		return "truncate"
	case FlipByte:
		return "flipbyte"
	case Rewind:
		return "rewind"
	case Disconnect:
		return "disconnect"
	default:
		return "unknown"
	}
}

// rewindBytes is how far a Rewind pulls the requested offset back.
const rewindBytes = 48

// Proxy is the fault-injecting reverse proxy. Faults are queued with
// Inject; each queued fault lands on the first segment exchange it can
// actually damage (a body-carrying response, or for Rewind a request
// with a nonzero offset) — long-poll timeouts with empty bodies are
// passed through without consuming the queue, so an injected fault is
// never silently wasted.
type Proxy struct {
	primary string
	client  *http.Client

	mu    sync.Mutex
	queue []Fault
	hits  int64
}

// New builds a proxy forwarding to the primary's base URL.
func New(primary string) *Proxy {
	return &Proxy{primary: primary, client: &http.Client{}}
}

// Inject queues n instances of a fault.
func (p *Proxy) Inject(f Fault, n int) {
	p.mu.Lock()
	for i := 0; i < n; i++ {
		p.queue = append(p.queue, f)
	}
	p.mu.Unlock()
}

// Injected reports how many faults have landed.
func (p *Proxy) Injected() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

// Pending reports how many queued faults have not landed yet.
func (p *Proxy) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// take pops the queue head when it satisfies applies.
func (p *Proxy) take(applies func(Fault) bool) Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 || !applies(p.queue[0]) {
		return None
	}
	f := p.queue[0]
	p.queue = p.queue[1:]
	p.hits++
	return f
}

// ServeHTTP forwards the request, damaging segment traffic per the
// fault queue. Non-segment paths (manifest, snapshots) pass through.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if r.URL.Path == "/v1/repl/segments" {
		// Rewind mutates the request before it is forwarded: the honest
		// upstream response then carries bytes the follower already
		// applied, with headers truthfully reporting the earlier offset.
		p.take(func(f Fault) bool {
			if f != Rewind {
				return false
			}
			off, err := strconv.ParseInt(q.Get("offset"), 10, 64)
			if err != nil || off <= 0 {
				return false
			}
			off -= rewindBytes
			if off < 0 {
				off = 0
			}
			q.Set("offset", strconv.FormatInt(off, 10))
			return true
		})
	}

	u := p.primary + r.URL.Path
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := p.client.Get(u)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}

	fault := None
	if r.URL.Path == "/v1/repl/segments" && resp.StatusCode == http.StatusOK && len(body) > 0 {
		fault = p.take(func(f Fault) bool {
			return f == Truncate || f == FlipByte || f == Disconnect
		})
	}
	switch fault {
	case Truncate:
		body = body[:len(body)-1]
	case FlipByte:
		body[len(body)-1] ^= 0xFF
	}

	h := w.Header()
	for k, vs := range resp.Header {
		if k == "Content-Length" || k == "Transfer-Encoding" {
			continue
		}
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	if fault == Disconnect {
		// Advertise the full body, deliver half, and kill the
		// connection: the follower's body read fails mid-record.
		h.Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:len(body)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}
