package chaostest

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	onesided "repro"
	"repro/internal/replica"
)

// pair is a primary/follower pair with the fault proxy between them.
type pair struct {
	primary  *onesided.Engine
	follower *onesided.Engine
	f        *replica.Follower
	proxy    *Proxy
	mirror   string
}

// newPair starts a persistent primary, a fault proxy over its repl
// endpoints, and a follower tailing through the proxy.
func newPair(t *testing.T) *pair {
	t.Helper()
	peng, err := onesided.Open(onesided.WithPersistence(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peng.Close() })
	mux := http.NewServeMux()
	mux.Handle("/v1/repl/", replica.NewSource(peng.Log(), peng.DB()))
	upstream := httptest.NewServer(mux)
	t.Cleanup(upstream.Close)

	proxy := New(upstream.URL)
	front := httptest.NewServer(proxy)
	t.Cleanup(front.Close)

	mirror := t.TempDir()
	feng, f := startFollower(t, front.URL, mirror)
	return &pair{primary: peng, follower: feng, f: f, proxy: proxy, mirror: mirror}
}

// startFollower starts a follower engine over the mirror dir with fast
// test timings.
func startFollower(t *testing.T, primary, mirror string) (*onesided.Engine, *replica.Follower) {
	t.Helper()
	feng, err := onesided.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { feng.Close() })
	f, err := replica.Start(replica.FollowerConfig{
		Engine:       feng,
		Primary:      primary,
		Dir:          mirror,
		PollInterval: 50 * time.Millisecond,
		RetryBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return feng, f
}

// converge waits until the follower's Dump is byte-identical to the
// primary's and every queued fault has landed.
func (p *pair) converge(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	want := p.primary.DB().Dump()
	for time.Now().Before(deadline) {
		if err := p.f.Err(); err != nil {
			t.Fatalf("follower failed: %v (stats %+v)", err, p.f.Stats())
		}
		if p.proxy.Pending() == 0 && p.follower.DB().Dump() == want {
			if pe, fe := p.primary.DB().Epoch(), p.follower.DB().Epoch(); pe != fe {
				t.Fatalf("dumps equal but epochs diverge: primary %d, follower %d", pe, fe)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("never converged: %d faults pending, stats %+v\nfollower:\n%s\nprimary:\n%s",
		p.proxy.Pending(), p.f.Stats(), p.follower.DB().Dump(), p.primary.DB().Dump())
}

// feed writes n facts into the primary under pred, spaced out so faults
// queued on the proxy land on live tail traffic.
func (p *pair) feed(t *testing.T, pred string, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if _, err := p.primary.InsertFact(pred, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

// Fault sweep: each injected damage kind must end in a clean resume —
// convergence to a byte-identical dump — with the follower's counters
// showing the fault was actually seen, not skipped.

func TestFaultTornFinalRecord(t *testing.T) {
	p := newPair(t)
	p.feed(t, "edge", 0, 10)
	p.converge(t)

	p.proxy.Inject(Truncate, 3)
	p.feed(t, "edge", 10, 30)
	p.converge(t)
	if got := p.proxy.Injected(); got < 3 {
		t.Fatalf("injected %d truncations, want 3", got)
	}
}

func TestFaultFlippedCRCByte(t *testing.T) {
	p := newPair(t)
	p.feed(t, "edge", 0, 10)
	p.converge(t)

	p.proxy.Inject(FlipByte, 3)
	p.feed(t, "edge", 10, 30)
	p.converge(t)
	if got := p.proxy.Injected(); got < 3 {
		t.Fatalf("injected %d flips, want 3", got)
	}
	if st := p.f.Stats(); st.CorruptRetries == 0 {
		t.Fatalf("flipped bytes never tripped CRC verification: %+v", st)
	}
}

func TestFaultDuplicatedDelivery(t *testing.T) {
	p := newPair(t)
	p.feed(t, "edge", 0, 10)
	p.converge(t)

	p.proxy.Inject(Rewind, 3)
	p.feed(t, "edge", 10, 30)
	p.converge(t)
	if got := p.proxy.Injected(); got < 3 {
		t.Fatalf("injected %d rewinds, want 3", got)
	}
}

func TestFaultMidRecordDisconnect(t *testing.T) {
	p := newPair(t)
	p.feed(t, "edge", 0, 10)
	p.converge(t)

	p.proxy.Inject(Disconnect, 3)
	p.feed(t, "edge", 10, 30)
	p.converge(t)
	if got := p.proxy.Injected(); got < 3 {
		t.Fatalf("injected %d disconnects, want 3", got)
	}
	if st := p.f.Stats(); st.Retries == 0 {
		t.Fatalf("disconnects never surfaced as transport retries: %+v", st)
	}
}

// TestFaultSweepMixed interleaves every damage kind with ongoing writes
// and a checkpoint; one pass must still converge byte-identically.
func TestFaultSweepMixed(t *testing.T) {
	p := newPair(t)
	p.feed(t, "edge", 0, 5)
	if _, err := p.primary.Load("t(X, Y) :- edge(X, Y)."); err != nil {
		t.Fatal(err)
	}
	p.converge(t)

	kinds := []Fault{Truncate, FlipByte, Rewind, Disconnect}
	for round, k := range kinds {
		p.proxy.Inject(k, 2)
		p.feed(t, "edge", 5+round*20, 20)
		if round == 1 {
			if err := p.primary.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		p.converge(t)
	}
	if got := p.proxy.Injected(); got < int64(2*len(kinds)) {
		t.Fatalf("only %d faults landed, want %d", got, 2*len(kinds))
	}
}

// TestPersistentCorruptionFailsTyped is the other side of the contract:
// when the path stays damaged past the retry budget the follower must
// stop with ErrCorrupt — and keep serving only the state it verified,
// never a wrong answer.
func TestPersistentCorruptionFailsTyped(t *testing.T) {
	peng, err := onesided.Open(onesided.WithPersistence(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peng.Close() })
	mux := http.NewServeMux()
	mux.Handle("/v1/repl/", replica.NewSource(peng.Log(), peng.DB()))
	upstream := httptest.NewServer(mux)
	t.Cleanup(upstream.Close)
	proxy := New(upstream.URL)
	proxy.Inject(FlipByte, 10000) // the damage never clears
	front := httptest.NewServer(proxy)
	t.Cleanup(front.Close)

	feng, err := onesided.Open()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { feng.Close() })
	f, err := replica.Start(replica.FollowerConfig{
		Engine:            feng,
		Primary:           front.URL,
		Dir:               t.TempDir(),
		PollInterval:      50 * time.Millisecond,
		RetryBackoff:      time.Millisecond,
		MaxCorruptRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		peng.AddFact("edge", fmt.Sprintf("k%d", i), "v")
	}

	deadline := time.Now().Add(15 * time.Second)
	for f.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("follower never failed: %+v", f.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := f.Err(); !errors.Is(err, replica.ErrCorrupt) {
		t.Fatalf("terminal error = %v, want ErrCorrupt", err)
	}
	if st := f.Stats(); st.State != "failed" {
		t.Fatalf("state = %q, want failed", st.State)
	}
	// Whatever the follower holds is a verified prefix: every tuple it
	// serves exists on the primary, and its epoch never ran ahead.
	if fe, pe := feng.DB().Epoch(), peng.DB().Epoch(); fe > pe {
		t.Fatalf("failed follower epoch %d ahead of primary %d", fe, pe)
	}
	pdump := p2lines(peng.DB().Dump())
	for line := range p2lines(feng.DB().Dump()) {
		if !pdump[line] {
			t.Fatalf("follower serves a tuple the primary never had: %q", line)
		}
	}
}

// p2lines splits a Dump into its line set.
func p2lines(dump string) map[string]bool {
	m := make(map[string]bool)
	for _, line := range strings.Split(dump, "\n") {
		if line != "" {
			m[line] = true
		}
	}
	return m
}
