// Package replica implements log-shipping replication for onesided
// engines: a Source serves a primary's write-ahead log — checkpoint
// chain plus live segments — over HTTP, and a Follower consumes that
// stream into a read-only engine, mirroring verified bytes locally so
// restarts resume from disk and promotion turns the mirror into the
// new primary's log.
//
// The correctness contract is the epoch invariant: the database epoch
// counts accepted inserts, relations are insert-only sets, and replay
// is idempotent — so a follower that has applied the log up to byte
// position P has exactly the primary's epoch at P, the same symbol
// Value assignment, and a byte-identical Dump. Every applied record was
// CRC-verified first; a record that does not verify is refetched or the
// follower fails typed. A follower never applies — and therefore never
// serves — bytes it could not verify.
package replica

import (
	"errors"

	"repro/internal/wal"
)

// Typed terminal failures. Transport errors and short reads are
// retried; these are not.
var (
	// ErrCorrupt reports replication input that failed verification
	// beyond the retry budget: the source (or the path to it) is
	// persistently damaged.
	ErrCorrupt = errors.New("replica: corrupt replication stream")
	// ErrDiverged reports that the follower's applied position is ahead
	// of the primary's sealed history — the primary lost a suffix the
	// follower already applied (e.g. an unsynced-WAL crash). The
	// follower cannot rejoin without a fresh bootstrap.
	ErrDiverged = errors.New("replica: follower diverged from primary history")
	// ErrClosed reports an operation on a closed follower.
	ErrClosed = errors.New("replica: follower closed")
)

// Manifest is the primary's replication advertisement: the newest
// snapshot chain a follower bootstraps from, the live segments, and the
// primary's current epoch.
type Manifest struct {
	// HeadSnapshot is the newest checkpoint's sequence (0 when the
	// primary has never checkpointed).
	HeadSnapshot uint64 `json:"head_snapshot"`
	// Chain lists every snapshot sequence the head references, itself
	// included, ascending. A bootstrap fetches exactly these.
	Chain []uint64 `json:"chain,omitempty"`
	// Segments lists the live segments ascending; replay starts at the
	// lowest and follows the active one.
	Segments []wal.SegmentInfo `json:"segments"`
	// ActiveSeq is the segment currently accepting appends.
	ActiveSeq uint64 `json:"active_seq"`
	// Epoch is the primary's database epoch at manifest time.
	Epoch uint64 `json:"epoch"`
}

// Cursor is a replication position: the first unapplied byte of a
// segment (offsets include the wal.SegmentHeaderSize-byte header).
type Cursor struct {
	Seq    uint64 `json:"seq"`
	Offset int64  `json:"offset"`
}

// State is a follower's lifecycle phase.
type State int32

const (
	// StateBootstrapping: fetching and applying the checkpoint chain.
	StateBootstrapping State = iota
	// StateTailing: applying live segment records as they appear.
	StateTailing
	// StateFailed: the tail loop hit a terminal typed error; reads
	// still serve the last applied state, writes never happened here.
	StateFailed
	// StatePromoted: Promote succeeded; the engine owns the mirror as
	// its write-ahead log and accepts writes.
	StatePromoted
	// StateClosed: Close was called.
	StateClosed
)

// String names the state for stats output.
func (s State) String() string {
	switch s {
	case StateBootstrapping:
		return "bootstrapping"
	case StateTailing:
		return "tailing"
	case StateFailed:
		return "failed"
	case StatePromoted:
		return "promoted"
	case StateClosed:
		return "closed"
	default:
		return "unknown"
	}
}

// Stats is a follower's replication telemetry, served by /v1/stats.
type Stats struct {
	State string `json:"state"`
	// Cursor is the committed position: every byte below it was
	// CRC-verified, applied, and mirrored.
	Cursor Cursor `json:"cursor"`
	// AppliedEpoch is the follower's database epoch — by the epoch
	// invariant, the primary's epoch at the cursor position.
	AppliedEpoch uint64 `json:"applied_epoch"`
	// PrimaryEpoch is the primary's epoch from the newest stream
	// response (0 until the first response).
	PrimaryEpoch uint64 `json:"primary_epoch"`
	// LagEpochs = PrimaryEpoch - AppliedEpoch, clamped at 0.
	LagEpochs uint64 `json:"lag_epochs"`
	// LagBytes is the unapplied byte count of the current segment (the
	// primary's reported size minus the cursor offset, clamped at 0);
	// segments beyond the current one are not included.
	LagBytes int64 `json:"lag_bytes"`
	// RecordsApplied counts applied log records since Start;
	// SnapshotsApplied counts bootstrap/resync snapshots.
	RecordsApplied   int64 `json:"records_applied"`
	SnapshotsApplied int64 `json:"snapshots_applied"`
	// Retries counts transport-level retries; CorruptRetries counts
	// refetches after verification failures.
	Retries        int64 `json:"retries"`
	CorruptRetries int64 `json:"corrupt_retries"`
	// Err is the terminal error when State is "failed".
	Err string `json:"err,omitempty"`
}
